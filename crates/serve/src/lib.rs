//! # mgpu-serve — a multi-scene render service over `mgpu-volren`
//!
//! The paper renders one frame at a time; this crate adds the production
//! front-end the ROADMAP's north star asks for: a [`RenderService`] that
//! accepts concurrent frame requests for many scenes and schedules the
//! renderer behind a job queue, in the spirit of distributed GPU render
//! front-ends (cf. Hassan et al., arXiv:1205.0282).
//!
//! Architecture (one request's path):
//!
//! ```text
//! submit(SceneRequest) ── frame cache? ──hit──► FrameTicket (immediate)
//!        │ miss
//!        ▼
//!   JobQueue (priority, FIFO within class)
//!        │ pop + drain_matching(batch key)
//!        ▼
//!   worker: shared FramePlan ──► render_planned per frame ──► cache ──► ticket
//! ```
//!
//! * **Queue** — [`queue::JobQueue`]: interactive requests overtake batch
//!   sweeps, FIFO within a class (no starvation).
//! * **Batching** — [`batch::BatchKey`]: frames that agree on (cluster,
//!   volume, config) share one [`mgpu_volren::FramePlan`], so the volume is
//!   bricked and staged once per batch instead of once per frame.
//! * **Cache** — [`cache::FrameCache`]: bounded LRU over rendered frames;
//!   repeated views skip the renderer entirely.
//! * **Accounting** — [`report::ServiceReport`]: queue latency, batch
//!   occupancy, cache hit rate, staging reuse, frames/sec — alongside the
//!   per-frame [`mgpu_volren::RenderReport`] each ticket carries.
//!
//! Determinism: a frame rendered through the service is bit-identical to a
//! direct [`mgpu_volren::render`] call with the same request, regardless of
//! worker count, batching, caching or interleaving.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver};

use mgpu_cluster::ClusterSpec;
use mgpu_voldata::Volume;
use mgpu_volren::camera::Scene;
use mgpu_volren::config::RenderConfig;
use mgpu_volren::{Image, RenderReport};

pub mod batch;
pub mod cache;
pub mod queue;
pub mod report;
pub mod session;
mod worker;

pub use batch::BatchKey;
pub use cache::{FrameCache, FrameCacheSnapshot, FrameKey};
pub use queue::Priority;
pub use report::ServiceReport;
pub use session::SceneSession;

use report::ServiceStats;

/// Everything needed to render one frame, as submitted by a client.
#[derive(Debug, Clone)]
pub struct SceneRequest {
    pub spec: ClusterSpec,
    pub volume: Volume,
    pub scene: Scene,
    pub config: RenderConfig,
    pub priority: Priority,
}

/// A completed frame as delivered by a [`FrameTicket`]. Cheap to clone: the
/// image and report are shared (cache hits hand out the same allocation).
#[derive(Debug, Clone)]
pub struct RenderedFrame {
    pub image: Arc<Image>,
    pub report: Arc<RenderReport>,
    /// Served from the frame cache (no render happened for this request).
    pub from_cache: bool,
}

/// Handle to one submitted frame; redeem with [`FrameTicket::wait`].
#[derive(Debug)]
pub struct FrameTicket {
    rx: Receiver<RenderedFrame>,
    seq: Option<u64>,
}

impl FrameTicket {
    /// Block until the frame is rendered (or served from cache).
    ///
    /// Panics if the service was torn down without completing the job —
    /// that cannot happen through the public API: shutdown drains the queue.
    pub fn wait(self) -> RenderedFrame {
        self.rx
            .recv()
            .expect("render service dropped a pending job")
    }

    /// Queue sequence number, if the request went through the queue
    /// (`None` = answered immediately from the frame cache).
    pub fn seq(&self) -> Option<u64> {
        self.seq
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads rendering frames (each render additionally spawns its
    /// own mapper/reducer threads, so a few workers saturate a host).
    pub workers: usize,
    /// Max frames per batch; 1 disables batching.
    pub max_batch: usize,
    /// Frame-cache capacity in frames; 0 disables the cache.
    pub cache_frames: usize,
    /// Start with the queue paused: submissions accumulate until
    /// [`RenderService::resume`], which makes batch formation deterministic
    /// (benchmarks, tests).
    pub start_paused: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            max_batch: 8,
            cache_frames: 64,
            start_paused: false,
        }
    }
}

/// Shared state behind the service handle (workers hold an `Arc`).
pub(crate) struct ServiceInner {
    pub(crate) config: ServiceConfig,
    pub(crate) queue: queue::JobQueue,
    pub(crate) cache: FrameCache<RenderedFrame>,
    pub(crate) stats: ServiceStats,
    pub(crate) started: Instant,
}

impl ServiceInner {
    pub(crate) fn submit(self: &Arc<Self>, request: SceneRequest) -> FrameTicket {
        // Uniform behaviour for handles (sessions) that outlive the service:
        // every submit after shutdown panics, cached or not.
        assert!(
            !self.queue.is_closed(),
            "cannot submit to a shut-down render service"
        );
        ServiceStats::bump(&self.stats.frames_submitted);
        let key = FrameKey::new(
            &request.spec,
            &request.volume,
            &request.scene,
            &request.config,
        );
        // Fast path: a cached frame resolves the ticket immediately, without
        // queueing. (Workers re-check the cache, so duplicates in flight
        // still coalesce once the first render lands.)
        if let Some(mut frame) = self.cache.get(&key) {
            frame.from_cache = true;
            ServiceStats::bump(&self.stats.cache_hits);
            ServiceStats::bump(&self.stats.frames_completed);
            let (tx, rx) = bounded(1);
            tx.send(frame).expect("fresh ticket channel");
            return FrameTicket { rx, seq: None };
        }
        let batch_key = BatchKey::of(&request);
        let (tx, rx) = bounded(1);
        let seq = self.queue.push(request, batch_key, tx);
        FrameTicket { rx, seq: Some(seq) }
    }

    pub(crate) fn report(&self) -> ServiceReport {
        ServiceReport::from_stats(&self.stats, self.started.elapsed())
    }
}

/// The render service: a worker pool over a prioritized job queue with frame
/// batching and a frame cache. See the crate docs for the architecture.
pub struct RenderService {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
}

impl RenderService {
    /// Start the service with `config.workers` worker threads.
    pub fn start(config: ServiceConfig) -> RenderService {
        assert!(config.workers >= 1, "service needs at least one worker");
        assert!(config.max_batch >= 1, "max_batch of 0 would render nothing");
        let inner = Arc::new(ServiceInner {
            queue: queue::JobQueue::new(config.start_paused),
            cache: FrameCache::new(config.cache_frames),
            stats: ServiceStats::default(),
            started: Instant::now(),
            config,
        });
        let workers = (0..inner.config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mgpu-serve-worker-{i}"))
                    .spawn(move || worker::worker_loop(inner))
                    .expect("spawn render worker")
            })
            .collect();
        RenderService { inner, workers }
    }

    /// Submit one frame request; returns immediately with a ticket.
    ///
    /// Panics if called (from this handle or an outliving [`SceneSession`])
    /// after [`RenderService::shutdown`].
    pub fn submit(&self, request: SceneRequest) -> FrameTicket {
        self.inner.submit(request)
    }

    /// Open a client session bound to one (cluster, volume, config) — the
    /// ergonomic way to request many frames of one dataset.
    pub fn session(&self, spec: ClusterSpec, volume: Volume, config: RenderConfig) -> SceneSession {
        SceneSession::new(Arc::clone(&self.inner), spec, volume, config)
    }

    /// Stop popping jobs (submissions still accepted and queued).
    pub fn pause(&self) {
        self.inner.queue.set_paused(true);
    }

    /// Resume popping; wakes all workers.
    pub fn resume(&self) {
        self.inner.queue.set_paused(false);
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.inner.queue.len()
    }

    /// Point-in-time service accounting.
    pub fn report(&self) -> ServiceReport {
        self.inner.report()
    }

    /// Frame-cache counters.
    pub fn cache_snapshot(&self) -> FrameCacheSnapshot {
        self.inner.cache.snapshot()
    }

    /// Drain the queue, stop the workers and return the final report. Every
    /// ticket submitted before the call still resolves.
    pub fn shutdown(mut self) -> ServiceReport {
        self.teardown();
        self.inner.report()
    }

    fn teardown(&mut self) {
        self.inner.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for RenderService {
    fn drop(&mut self) {
        self.teardown();
    }
}
