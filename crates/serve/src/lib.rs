//! # mgpu-serve — a multi-scene render service over `mgpu-volren`
//!
//! The paper renders one frame at a time; this crate adds the production
//! front-end the ROADMAP's north star asks for: a [`RenderService`] that
//! accepts concurrent frame requests for many scenes and schedules the
//! renderer behind a job queue, in the spirit of distributed GPU render
//! front-ends (cf. Hassan et al., arXiv:1205.0282).
//!
//! Architecture (one request's path):
//!
//! ```text
//! submit / try_submit(SceneRequest)
//!        │ (rendezvous-routed by ShardedService when sharded)
//!        ├── frame cache? ──hit──► FrameTicket (immediate)
//!        │ miss
//!        ├── admission control: class at its queue bound? ──► AdmissionError
//!        ▼
//!   JobQueue (priority, FIFO within class, per-priority depth bounds)
//!        │ pop + drain_matching(batch key)
//!        ▼
//!   worker: plan cache (BatchKey → Arc<FramePlan>) ──► render_planned
//!        │ per frame (panics caught: job fails, worker survives)
//!        ▼
//!   frame cache ──► ticket
//! ```
//!
//! * **Queue** — [`queue::JobQueue`]: interactive requests overtake batch
//!   sweeps, FIFO within a class (no starvation).
//! * **Admission** — [`queue::QueueBounds`]: per-priority queue-depth
//!   bounds; under overload [`RenderService::try_submit`] sheds `Batch`
//!   first and `Interactive` last, while [`RenderService::submit`] blocks
//!   for capacity.
//! * **Batching** — [`batch::BatchKey`]: frames that agree on (cluster,
//!   volume, config) share one [`mgpu_volren::FramePlan`], so the volume is
//!   bricked and staged once per batch instead of once per frame.
//! * **Plan cache** — [`plancache::PlanCache`]: plans survive *across*
//!   batches, so sustained same-volume traffic keeps its brick store warm
//!   instead of re-staging every batch.
//! * **Cache** — [`cache::FrameCache`]: bounded LRU over rendered frames;
//!   repeated views skip the renderer entirely.
//! * **Sharding** — [`shard::ShardedService`]: rendezvous-hashes batch keys
//!   over N independent services so distinct volumes stop contending on one
//!   queue and always land where their plan cache is warm.
//! * **Backend contract** — [`backend::RenderBackend`]: the one trait every
//!   front-end implements (`RenderService`, `ShardedService`, and the
//!   remote backends in `mgpu-net`), with a shared error vocabulary
//!   ([`backend::BackendError`]) and frame type ([`backend::BackendFrame`])
//!   — callers written against it move from one GPU to a cluster of render
//!   nodes without a rewrite.
//! * **Accounting** — [`report::ServiceReport`]: queue latency, batch
//!   occupancy, cache and plan-cache hit rates, staging reuse, admission
//!   rejections, failed frames, frames/sec — alongside the per-frame
//!   [`mgpu_volren::RenderReport`] each ticket carries.
//!
//! Determinism: a frame rendered through the service is bit-identical to a
//! direct [`mgpu_volren::render`] call with the same request, regardless of
//! worker count, batching, caching, plan reuse, sharding or interleaving.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver};
use mgpu_obs::names;
use mgpu_obs::Trace;

use mgpu_cluster::ClusterSpec;
use mgpu_voldata::Volume;
use mgpu_volren::camera::Scene;
use mgpu_volren::config::RenderConfig;
use mgpu_volren::{Image, RenderReport};

pub mod backend;
pub mod batch;
pub mod cache;
pub mod plancache;
pub mod queue;
pub mod report;
pub mod session;
pub mod shard;
mod worker;

pub use backend::{BackendError, BackendFrame, RenderBackend};
pub use batch::BatchKey;
pub use cache::{CacheSnapshot, FrameCache, FrameKey};
pub use plancache::PlanCache;
pub use queue::{AdmissionError, Priority, QueueBounds, Reply};
pub use report::{ServiceReport, WAIT_BUCKETS};
pub use session::{SceneSession, SessionTicket};
pub use shard::{ShardHeat, ShardedService};

use report::ServiceStats;

/// A fresh trace for a request submitted through the local API (no wire
/// `request_id` to inherit). The top bit is set so locally minted ids never
/// collide with client-chosen wire ids in a shared trace ring.
fn local_trace() -> Arc<Trace> {
    static LOCAL_IDS: AtomicU64 = AtomicU64::new(0);
    Trace::start(LOCAL_IDS.fetch_add(1, Ordering::Relaxed) | 1 << 63)
}

/// Everything needed to render one frame, as submitted by a client.
#[derive(Debug, Clone)]
pub struct SceneRequest {
    pub spec: ClusterSpec,
    pub volume: Volume,
    pub scene: Scene,
    pub config: RenderConfig,
    pub priority: Priority,
}

/// A completed frame as delivered by a [`FrameTicket`]. Cheap to clone: the
/// image and report are shared (cache hits hand out the same allocation).
#[derive(Debug, Clone)]
pub struct RenderedFrame {
    pub image: Arc<Image>,
    pub report: Arc<RenderReport>,
    /// Served from the frame cache (no render happened for this request).
    pub from_cache: bool,
}

/// Why a submitted frame could not be delivered: the render panicked (the
/// worker caught the unwind and stayed alive) or the job was lost. The
/// failure is explicit — [`FrameTicket::wait`] panics with this message,
/// [`FrameTicket::wait_result`] returns it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    message: String,
}

impl FrameError {
    /// Build a frame error from its message — the form a network front-end
    /// uses to reconstruct a failure that crossed the wire (the message is
    /// the whole state, so round-tripping preserves equality).
    pub fn new(message: impl Into<String>) -> FrameError {
        FrameError {
            message: message.into(),
        }
    }

    pub(crate) fn from_panic(payload: &(dyn std::any::Any + Send)) -> FrameError {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "render panicked with a non-string payload".to_string()
        };
        FrameError {
            message: format!("render panicked: {message}"),
        }
    }

    pub(crate) fn lost() -> FrameError {
        FrameError {
            message: "render service dropped the job without completing it".to_string(),
        }
    }

    /// Human-readable cause (the panic message for caught render panics).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for FrameError {}

/// What travels down a ticket's channel: the frame, or the explicit failure.
pub type FrameResult = Result<RenderedFrame, FrameError>;

/// Handle to one submitted frame; redeem with [`FrameTicket::wait`] (panics
/// on failure) or [`FrameTicket::wait_result`].
#[derive(Debug)]
pub struct FrameTicket {
    rx: Receiver<FrameResult>,
    seq: Option<u64>,
}

impl FrameTicket {
    /// Block until the frame is rendered (or served from cache).
    ///
    /// Panics with the explicit failure message if the render panicked (see
    /// [`FrameTicket::wait_result`] for the non-panicking form), or if the
    /// service was torn down without completing the job — the latter cannot
    /// happen through the public API: shutdown drains the queue.
    pub fn wait(self) -> RenderedFrame {
        match self.rx.recv() {
            Ok(Ok(frame)) => frame,
            Ok(Err(err)) => panic!("render service job failed: {err}"),
            Err(_) => panic!("render service dropped a pending job"),
        }
    }

    /// Block until the frame resolves, returning the failure instead of
    /// panicking.
    pub fn wait_result(self) -> FrameResult {
        self.rx.recv().unwrap_or_else(|_| Err(FrameError::lost()))
    }

    /// Queue sequence number, if the request went through the queue
    /// (`None` = answered immediately from the frame cache).
    pub fn seq(&self) -> Option<u64> {
        self.seq
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads rendering frames (each render additionally spawns its
    /// own mapper/reducer threads, so a few workers saturate a host).
    pub workers: usize,
    /// Max frames per batch; 1 disables batching.
    pub max_batch: usize,
    /// Frame-cache capacity in frames; 0 disables the cache.
    pub cache_frames: usize,
    /// Cross-batch plan-cache capacity in plans; 0 disables cross-batch
    /// reuse (every batch re-bricks and re-stages, PR 2 behaviour).
    pub plan_cache_plans: usize,
    /// Per-priority admission bounds on queue depth (default: unbounded).
    /// Must shed lower priorities first: `batch ≤ normal ≤ interactive`.
    pub queue_bounds: QueueBounds,
    /// Start with the queue paused: submissions accumulate until
    /// [`RenderService::resume`], which makes batch formation deterministic
    /// (benchmarks, tests). Use [`RenderService::try_submit`] when pausing a
    /// *bounded* queue — the blocking submit would wait forever.
    pub start_paused: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            max_batch: 8,
            cache_frames: 64,
            plan_cache_plans: 8,
            queue_bounds: QueueBounds::default(),
            start_paused: false,
        }
    }
}

/// Shared state behind the service handle (workers hold an `Arc`).
pub(crate) struct ServiceInner {
    pub(crate) config: ServiceConfig,
    pub(crate) queue: queue::JobQueue,
    pub(crate) cache: FrameCache<RenderedFrame>,
    pub(crate) plans: PlanCache,
    pub(crate) stats: ServiceStats,
    pub(crate) started: Instant,
}

impl ServiceInner {
    /// Fast path: a cached frame resolves the ticket immediately, without
    /// queueing. (Workers re-check the cache, so duplicates in flight still
    /// coalesce once the first render lands.)
    fn cached_ticket(&self, request: &SceneRequest) -> Option<FrameTicket> {
        let key = FrameKey::new(
            &request.spec,
            &request.volume,
            &request.scene,
            &request.config,
        );
        self.cache.get(&key).map(|mut frame| {
            frame.from_cache = true;
            self.bump_cache_hit();
            let (tx, rx) = bounded(1);
            tx.send(Ok(frame)).expect("fresh ticket channel");
            FrameTicket { rx, seq: None }
        })
    }

    /// Counter bumps shared by both cache fast paths: the per-instance
    /// stats and their process-global obs mirrors move in lockstep.
    fn bump_cache_hit(&self) {
        ServiceStats::bump(&self.stats.frames_submitted);
        ServiceStats::bump(&self.stats.cache_hits);
        ServiceStats::bump(&self.stats.frames_completed);
        self.stats.obs.frames_submitted.inc();
        self.stats.obs.frame_cache_hits.inc();
        self.stats.obs.frames_completed.inc();
    }

    /// Counter bumps for a request the frame cache could not answer and the
    /// queue accepted.
    fn bump_queued_submit(&self) {
        ServiceStats::bump(&self.stats.frames_submitted);
        self.stats.obs.frames_submitted.inc();
        self.stats.obs.frame_cache_misses.inc();
    }

    fn assert_open(&self) {
        // Defensive: no public path submits after shutdown (sessions borrow
        // the service, shutdown consumes it), but an internal caller that
        // raced teardown should fail loudly, cached or not.
        assert!(
            !self.queue.is_closed(),
            "cannot submit to a shut-down render service"
        );
    }

    /// Cache fast path for the hook-based submit: serve the hit through the
    /// hook on the caller's thread, bumping the same counters as
    /// [`ServiceInner::cached_ticket`].
    fn cached_hit(&self, request: &SceneRequest) -> Option<RenderedFrame> {
        let key = FrameKey::new(
            &request.spec,
            &request.volume,
            &request.scene,
            &request.config,
        );
        self.cache.get(&key).map(|mut frame| {
            frame.from_cache = true;
            self.bump_cache_hit();
            frame
        })
    }

    pub(crate) fn submit(self: &Arc<Self>, request: SceneRequest) -> FrameTicket {
        self.assert_open();
        if let Some(ticket) = self.cached_ticket(&request) {
            return ticket;
        }
        let batch_key = BatchKey::of(&request);
        let (tx, rx) = bounded(1);
        let seq = self
            .queue
            .push(request, batch_key, queue::Reply::channel(tx), local_trace());
        self.bump_queued_submit();
        FrameTicket { rx, seq: Some(seq) }
    }

    pub(crate) fn try_submit(
        self: &Arc<Self>,
        request: SceneRequest,
    ) -> Result<FrameTicket, AdmissionError> {
        self.assert_open();
        if let Some(ticket) = self.cached_ticket(&request) {
            return Ok(ticket);
        }
        let batch_key = BatchKey::of(&request);
        let (tx, rx) = bounded(1);
        match self
            .queue
            .try_push(request, batch_key, queue::Reply::channel(tx), local_trace())
        {
            Ok(seq) => {
                self.bump_queued_submit();
                Ok(FrameTicket { rx, seq: Some(seq) })
            }
            Err((err, reply)) => {
                reply.cancel();
                ServiceStats::bump(&self.stats.admission_rejected);
                self.stats.obs.admission_rejected.inc();
                Err(err)
            }
        }
    }

    pub(crate) fn try_submit_with(
        self: &Arc<Self>,
        request: SceneRequest,
        reply: queue::Reply,
    ) -> Result<(), AdmissionError> {
        self.try_submit_traced(request, reply, local_trace())
    }

    /// The traced admission path: a network front-end passes the trace it
    /// seeded from the wire `request_id`, so the spans the worker and the
    /// renderer record land on the request's own end-to-end trace.
    pub(crate) fn try_submit_traced(
        self: &Arc<Self>,
        request: SceneRequest,
        reply: queue::Reply,
        trace: Arc<Trace>,
    ) -> Result<(), AdmissionError> {
        self.assert_open();
        if let Some(frame) = self.cached_hit(&request) {
            reply.deliver(Ok(frame));
            return Ok(());
        }
        let batch_key = BatchKey::of(&request);
        match self.queue.try_push(request, batch_key, reply, trace) {
            Ok(_) => {
                self.bump_queued_submit();
                Ok(())
            }
            Err((err, reply)) => {
                reply.cancel();
                ServiceStats::bump(&self.stats.admission_rejected);
                self.stats.obs.admission_rejected.inc();
                Err(err)
            }
        }
    }

    pub(crate) fn report(&self) -> ServiceReport {
        ServiceReport::from_stats(
            &self.stats,
            self.plans.snapshot(),
            self.cache.snapshot(),
            self.started.elapsed(),
        )
    }
}

/// The render service: a worker pool over a prioritized, bounded job queue
/// with frame batching, a cross-batch plan cache and a frame cache. See the
/// crate docs for the architecture.
pub struct RenderService {
    pub(crate) inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
}

impl RenderService {
    /// Start the service with `config.workers` worker threads.
    pub fn start(config: ServiceConfig) -> RenderService {
        assert!(config.workers >= 1, "service needs at least one worker");
        assert!(config.max_batch >= 1, "max_batch of 0 would render nothing");
        config.queue_bounds.validate();
        let inner = Arc::new(ServiceInner {
            queue: queue::JobQueue::new(config.start_paused, config.queue_bounds),
            cache: FrameCache::new(config.cache_frames),
            plans: PlanCache::new(config.plan_cache_plans),
            stats: ServiceStats::default(),
            started: Instant::now(),
            config,
        });
        let workers = (0..inner.config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mgpu-serve-worker-{i}"))
                    .spawn(move || worker::worker_loop(inner))
                    .expect("spawn render worker")
            })
            .collect();
        RenderService { inner, workers }
    }

    /// Submit one frame request; blocks while this priority class is at its
    /// admission bound, then returns a ticket. With the default unbounded
    /// [`QueueBounds`] it never blocks.
    pub fn submit(&self, request: SceneRequest) -> FrameTicket {
        self.inner.submit(request)
    }

    /// Submit one frame request without blocking: if the request's priority
    /// class is at its queue bound the frame is shed with [`AdmissionError`]
    /// (`Batch` sheds first, `Interactive` last — see [`QueueBounds`]).
    pub fn try_submit(&self, request: SceneRequest) -> Result<FrameTicket, AdmissionError> {
        self.inner.try_submit(request)
    }

    /// [`RenderService::try_submit`] with a completion hook instead of a
    /// ticket: `on_done` runs exactly once with the [`FrameResult`] — on the
    /// resolving worker's thread, or immediately on the caller's for a frame
    /// cache hit. This is the admission path for event-driven front-ends: no
    /// waiter thread parks per frame; completions land wherever the hook
    /// puts them (a completion queue, typically). On [`AdmissionError`] the
    /// hook never runs — the caller reports the shed itself.
    pub fn try_submit_with(
        &self,
        request: SceneRequest,
        on_done: impl FnOnce(FrameResult) + Send + 'static,
    ) -> Result<(), AdmissionError> {
        self.inner.try_submit_with(request, Reply::hook(on_done))
    }

    /// [`RenderService::try_submit_with`] with a caller-provided
    /// [`mgpu_obs::Trace`]: the queue/plan/render (and, inside the renderer,
    /// stage/kernel/composite) spans are recorded onto `trace` instead of a
    /// fresh one. A network front-end seeds the trace from the wire
    /// `request_id` so one request is followable end to end.
    pub fn try_submit_traced(
        &self,
        request: SceneRequest,
        trace: Arc<Trace>,
        on_done: impl FnOnce(FrameResult) + Send + 'static,
    ) -> Result<(), AdmissionError> {
        self.inner
            .try_submit_traced(request, Reply::hook(on_done), trace)
    }

    /// Stop popping jobs (submissions still accepted and queued).
    pub fn pause(&self) {
        self.inner.queue.set_paused(true);
    }

    /// Resume popping; wakes all workers.
    pub fn resume(&self) {
        self.inner.queue.set_paused(false);
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.inner.queue.len()
    }

    /// Queued jobs per class, `[batch, normal, interactive]`.
    pub fn queue_depths(&self) -> [usize; 3] {
        self.inner.queue.depths()
    }

    /// Point-in-time service accounting.
    pub fn report(&self) -> ServiceReport {
        self.inner.report()
    }

    /// Frame-cache counters.
    pub fn cache_snapshot(&self) -> CacheSnapshot {
        self.inner.cache.snapshot()
    }

    /// Cross-batch plan-cache counters.
    pub fn plan_snapshot(&self) -> CacheSnapshot {
        self.inner.plans.snapshot()
    }

    /// Populate the plan cache for `request`'s [`BatchKey`] off the hot
    /// path: brick the volume and insert the shared [`mgpu_volren::FramePlan`] now, on
    /// the caller's thread, so the first real render of this key after a
    /// migration hits a warm cache instead of paying the staging cost.
    /// Returns `true` when a plan was built, `false` on a cache hit.
    pub fn prewarm(&self, request: &SceneRequest) -> bool {
        let key = BatchKey::of(request);
        if self.inner.plans.get(&key).is_some() {
            return false;
        }
        let plan = Arc::new(mgpu_volren::FramePlan::prepare(
            &request.spec,
            &request.volume,
            &request.config,
        ));
        self.inner.plans.insert(key, plan);
        mgpu_obs::global().counter(names::SERVE_PLAN_PREWARMS).inc();
        true
    }

    /// Drain the queue, stop the workers and return the final report. Every
    /// ticket submitted before the call still resolves.
    pub fn shutdown(mut self) -> ServiceReport {
        self.teardown();
        self.inner.report()
    }

    fn teardown(&mut self) {
        self.inner.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for RenderService {
    fn drop(&mut self) {
        self.teardown();
    }
}
