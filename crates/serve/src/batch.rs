//! Batch compatibility: which queued frames can share one
//! [`mgpu_volren::FramePlan`].
//!
//! Bricking, the staging decision and the brick store depend on the cluster
//! spec, the volume and the scene-independent parts of the render config —
//! not on the camera. Frames that agree on those render against one shared
//! plan, so the volume is bricked once and every brick is staged once per
//! batch instead of once per frame (the service-level analogue of the
//! paper's "all data resident" assumption).

use mgpu_cluster::ClusterSpec;
use mgpu_voldata::Volume;
use mgpu_volren::config::RenderConfig;

use crate::SceneRequest;

/// Identity of a shareable render plan: the `Debug` encoding of the cluster
/// spec, the volume metadata and the full render config — everything except
/// the scene. Requests with equal keys batch together.
///
/// The whole config participates (not only the bricking fields): equal keys
/// must imply "one plan serves all", and config fields like the partition
/// strategy also shape the per-frame job, so distinct configs never batch.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BatchKey(String);

impl BatchKey {
    pub fn new(spec: &ClusterSpec, volume: &Volume, cfg: &RenderConfig) -> BatchKey {
        BatchKey(format!("{spec:?}|{:?}|{cfg:?}", volume.meta))
    }

    pub fn of(request: &SceneRequest) -> BatchKey {
        BatchKey::new(&request.spec, &request.volume, &request.config)
    }

    /// An opaque key for tests and tools.
    pub fn synthetic(tag: impl std::fmt::Display) -> BatchKey {
        BatchKey(format!("synthetic-{tag}"))
    }

    /// Canonical byte encoding (the shard router hashes this).
    pub(crate) fn bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Priority;
    use mgpu_voldata::Dataset;
    use mgpu_volren::camera::Scene;
    use mgpu_volren::{RenderConfig, TransferFunction};

    fn request(volume: &Volume, azimuth: f32, image: u32) -> SceneRequest {
        SceneRequest {
            spec: ClusterSpec::accelerator_cluster(2),
            volume: volume.clone(),
            scene: Scene::orbit(volume, azimuth, 20.0, TransferFunction::bone()),
            config: RenderConfig::test_size(image),
            priority: Priority::Normal,
        }
    }

    #[test]
    fn same_volume_and_config_batch_across_scenes() {
        let v = Dataset::Skull.volume(16);
        let a = BatchKey::of(&request(&v, 10.0, 32));
        let b = BatchKey::of(&request(&v, 80.0, 32));
        assert_eq!(a, b, "camera must not split batches");
    }

    #[test]
    fn different_volume_config_or_cluster_do_not_batch() {
        let v = Dataset::Skull.volume(16);
        let base = BatchKey::of(&request(&v, 10.0, 32));

        let other_volume = Dataset::Plume.volume(8);
        assert_ne!(base, BatchKey::of(&request(&other_volume, 10.0, 32)));

        assert_ne!(base, BatchKey::of(&request(&v, 10.0, 64)));

        let mut bigger = request(&v, 10.0, 32);
        bigger.spec = ClusterSpec::accelerator_cluster(4);
        assert_ne!(base, BatchKey::of(&bigger));
    }

    /// Two in-memory volumes with identical `(name, dims, seed)` but
    /// different voxels must never share a plan: the `content` fingerprint
    /// in `VolumeMeta` keeps their batch keys apart.
    #[test]
    fn same_meta_different_voxels_do_not_batch() {
        let dims = [8u32, 8, 8];
        let a = Volume::in_memory("twin", dims, vec![0.2; 512]);
        let b = Volume::in_memory("twin", dims, vec![0.8; 512]);
        assert_ne!(
            BatchKey::of(&request(&a, 0.0, 16)),
            BatchKey::of(&request(&b, 0.0, 16)),
        );
    }
}
