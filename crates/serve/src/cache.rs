//! Bounded LRU caches: the frame cache over rendered frames and the backing
//! store for the cross-batch plan cache.
//!
//! [`LruCache`] is the shared mechanism: a key→value map plus a recency
//! index (a `BTreeSet` ordered by last-touch tick), so eviction pops the
//! least-recently-used entry in O(log n) instead of scanning every entry
//! under the lock — the service holds these locks on its hot submit path.
//!
//! [`FrameCache`] keys fully rendered frames by a canonical fingerprint of
//! `(cluster, volume, scene, config)`: repeated views — the common case for
//! interactive sessions orbiting a dataset — are answered without touching
//! the queue or the renderer. The key is the exact `Debug` encoding of every
//! input that can change pixels or timing, so lookups are equality matches,
//! never hash-collision guesses.

use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

use parking_lot::Mutex;

use mgpu_cluster::ClusterSpec;
use mgpu_voldata::Volume;
use mgpu_volren::camera::Scene;
use mgpu_volren::config::RenderConfig;

/// Canonical identity of one frame request.
///
/// Built from the `Debug` encodings of the cluster spec, the volume
/// metadata, the scene (camera, transfer function, background) and the full
/// render config — every input that influences the output. Two keys are
/// equal iff every rendering input is field-for-field identical.
///
/// Volume *content* participates through `VolumeMeta::content`, the cheap
/// voxel fingerprint: two in-memory volumes with identical `(name, dims,
/// seed)` but different voxels get different keys and never alias in the
/// cache.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameKey(String);

impl FrameKey {
    pub fn new(spec: &ClusterSpec, volume: &Volume, scene: &Scene, cfg: &RenderConfig) -> FrameKey {
        FrameKey(format!("{spec:?}|{:?}|{scene:?}|{cfg:?}", volume.meta))
    }

    /// An opaque key for tests and tools.
    pub fn synthetic(tag: impl std::fmt::Display) -> FrameKey {
        FrameKey(format!("synthetic-{tag}"))
    }
}

#[derive(Debug)]
struct CacheInner<K, V> {
    entries: HashMap<K, (V, u64)>,
    /// Recency index: `(last-touch tick, key)`, so the first element is
    /// always the LRU victim. Kept in lockstep with `entries`.
    recency: BTreeSet<(u64, K)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Point-in-time cache counters. `entries`/`capacity` give the occupancy
/// the shard heat metrics report; the counters are monotonic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    pub entries: usize,
    /// Configured bound in entries (0 = cache disabled).
    pub capacity: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl CacheSnapshot {
    /// Occupied fraction of the configured capacity (0.0 when disabled).
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.entries as f64 / self.capacity as f64
        }
    }

    /// Fraction of counted lookups that hit (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded LRU cache from `K` to `V`. `capacity` is in entries; zero
/// disables caching entirely (every `get` misses, `insert` is a no-op).
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    inner: Mutex<CacheInner<K, V>>,
}

/// The service's cache of rendered frames (stores [`crate::RenderedFrame`]).
pub type FrameCache<V> = LruCache<FrameKey, V>;

impl<K: Eq + Hash + Ord + Clone, V: Clone> LruCache<K, V> {
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            capacity,
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                recency: BTreeSet::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently cached. Cheap (one lock, no scan): the heat
    /// metrics poll this per shard on every stats request.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Monotonic hit counter (lookups answered from the cache).
    pub fn hits(&self) -> u64 {
        self.inner.lock().hits
    }

    /// Look up an entry, refreshing its recency on hit.
    pub fn get(&self, key: &K) -> Option<V> {
        self.lookup(key, true)
    }

    /// Like [`LruCache::get`], but a lookup failure does not count as a
    /// miss. This is the worker's in-flight coalescing *re-check* of a key
    /// that already missed at submit time — counting it again would report
    /// every rendered frame as two misses.
    pub fn recheck(&self, key: &K) -> Option<V> {
        self.lookup(key, false)
    }

    fn lookup(&self, key: &K, count_miss: bool) -> Option<V> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let inner = &mut *inner;
        match inner.entries.get_mut(key) {
            Some((value, last)) => {
                inner.recency.remove(&(*last, key.clone()));
                inner.recency.insert((tick, key.clone()));
                *last = tick;
                inner.hits += 1;
                Some(value.clone())
            }
            None => {
                if count_miss {
                    inner.misses += 1;
                }
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting least-recently-used entries
    /// past capacity — O(log n) per eviction via the recency index.
    pub fn insert(&self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let inner = &mut *inner;
        if let Some((_, old_tick)) = inner.entries.insert(key.clone(), (value, tick)) {
            inner.recency.remove(&(old_tick, key.clone()));
        }
        inner.recency.insert((tick, key));
        while inner.entries.len() > self.capacity {
            match inner.recency.pop_first() {
                Some((_, victim)) => {
                    inner.entries.remove(&victim);
                    inner.evictions += 1;
                }
                None => break,
            }
        }
    }

    pub fn snapshot(&self) -> CacheSnapshot {
        let inner = self.inner.lock();
        CacheSnapshot {
            entries: inner.entries.len(),
            capacity: self.capacity,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }

    #[cfg(test)]
    fn contains(&self, key: &K) -> bool {
        self.inner.lock().entries.contains_key(key)
    }

    /// Invariant check: the recency index mirrors the entry map exactly.
    #[cfg(test)]
    fn assert_consistent(&self) {
        let inner = self.inner.lock();
        assert_eq!(inner.entries.len(), inner.recency.len());
        for (key, (_, last)) in &inner.entries {
            assert!(
                inner.recency.contains(&(*last, key.clone())),
                "entry tick missing from recency index"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u32) -> FrameKey {
        FrameKey::synthetic(tag)
    }

    #[test]
    fn hit_refreshes_and_counts() {
        let c: FrameCache<u32> = FrameCache::new(4);
        c.insert(key(1), 11);
        assert!(c.get(&key(2)).is_none());
        assert_eq!(c.get(&key(1)), Some(11));
        let snap = c.snapshot();
        assert_eq!((snap.hits, snap.misses), (1, 1));
    }

    #[test]
    fn eviction_is_strict_lru_order() {
        let c: FrameCache<u32> = FrameCache::new(2);
        c.insert(key(1), 1);
        c.insert(key(2), 2);
        // Touch 1 so 2 becomes the LRU victim.
        c.get(&key(1)).unwrap();
        c.insert(key(3), 3);
        assert!(c.contains(&key(1)));
        assert!(!c.contains(&key(2)), "2 was least recently used");
        assert!(c.contains(&key(3)));
        // Next eviction removes 1 (3 arrived after the touch of 1).
        c.insert(key(4), 4);
        assert!(!c.contains(&key(1)));
        assert!(c.contains(&key(3)));
        assert!(c.contains(&key(4)));
        assert_eq!(c.snapshot().evictions, 2);
    }

    #[test]
    fn recheck_counts_hits_but_not_misses() {
        let c: FrameCache<u32> = FrameCache::new(2);
        assert!(c.recheck(&key(1)).is_none());
        c.insert(key(1), 1);
        assert_eq!(c.recheck(&key(1)), Some(1));
        let snap = c.snapshot();
        assert_eq!((snap.hits, snap.misses), (1, 0));
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let c: FrameCache<u32> = FrameCache::new(2);
        c.insert(key(1), 1);
        c.insert(key(2), 2);
        c.insert(key(1), 10); // refresh, no eviction: len stays 2
        c.insert(key(3), 3); // victim must be 2, not 1
        assert_eq!(c.get(&key(1)), Some(10));
        assert!(!c.contains(&key(2)));
    }

    #[test]
    fn zero_capacity_disables() {
        let c: FrameCache<u32> = FrameCache::new(0);
        c.insert(key(1), 1);
        assert!(c.get(&key(1)).is_none());
        // A disabled cache records no statistics at all.
        assert_eq!(c.snapshot(), CacheSnapshot::default());
    }

    /// Guard for the O(log n) eviction refactor: a large churn of inserts,
    /// touches and evictions keeps the recency index and the entry map in
    /// lockstep, and evicts in exact LRU order throughout.
    #[test]
    fn recency_index_survives_churn() {
        let c: LruCache<u32, u32> = LruCache::new(16);
        for i in 0..2_000u32 {
            c.insert(i, i);
            // Touch a sliding window of survivors in a scrambled order.
            if i >= 16 {
                c.get(&(i - (i % 7) % 16));
                c.recheck(&(i - (i % 13) % 16));
            }
            if i % 97 == 0 {
                c.assert_consistent();
            }
        }
        c.assert_consistent();
        let snap = c.snapshot();
        assert_eq!(snap.entries, 16);
        assert_eq!(snap.evictions, 2_000 - 16);
        // Touches only ever refresh keys already inside the sliding window,
        // so every survivor comes from the most recent window of inserts.
        assert!(c.contains(&1_999), "the newest key always survives");
        for i in 0..1_968 {
            assert!(!c.contains(&i), "stale key {i} must have been evicted");
        }
    }

    /// The cheap accessors the heat metrics poll: `len`, `capacity` and the
    /// hit counter must track the cache without needing a full snapshot.
    #[test]
    fn occupancy_accessors_track_the_cache() {
        let c: FrameCache<u32> = FrameCache::new(2);
        assert_eq!((c.len(), c.capacity(), c.hits()), (0, 2, 0));
        assert!(c.is_empty());
        c.insert(key(1), 1);
        c.insert(key(2), 2);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        c.insert(key(3), 3); // evicts: len stays at capacity
        assert_eq!(c.len(), 2);
        c.get(&key(3)).unwrap();
        c.recheck(&key(3)).unwrap();
        assert_eq!(c.hits(), 2, "get and recheck both count hits");
        let snap = c.snapshot();
        assert_eq!((snap.entries, snap.capacity), (2, 2));
        assert_eq!(snap.occupancy(), 1.0);
        assert_eq!(snap.hit_rate(), 1.0, "recheck misses are not counted");
    }

    #[test]
    fn snapshot_rates_have_no_nans() {
        let empty = CacheSnapshot::default();
        assert_eq!(empty.occupancy(), 0.0);
        assert_eq!(empty.hit_rate(), 0.0);
    }

    #[test]
    fn frame_key_separates_every_input() {
        use mgpu_voldata::Dataset;
        use mgpu_volren::TransferFunction;

        let spec = ClusterSpec::accelerator_cluster(2);
        let volume = Dataset::Skull.volume(16);
        let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
        let cfg = RenderConfig::test_size(32);
        let base = FrameKey::new(&spec, &volume, &scene, &cfg);
        assert_eq!(base, FrameKey::new(&spec, &volume, &scene, &cfg));

        let scene2 = Scene::orbit(&volume, 31.0, 20.0, TransferFunction::bone());
        assert_ne!(base, FrameKey::new(&spec, &volume, &scene2, &cfg));
        let cfg2 = RenderConfig::test_size(64);
        assert_ne!(base, FrameKey::new(&spec, &volume, &scene, &cfg2));
        let spec2 = ClusterSpec::accelerator_cluster(4);
        assert_ne!(base, FrameKey::new(&spec2, &volume, &scene, &cfg));
        let volume2 = Dataset::Supernova.volume(16);
        assert_ne!(base, FrameKey::new(&spec, &volume2, &scene, &cfg));
    }

    /// Same metadata, different voxels: the `content` fingerprint keeps the
    /// keys apart (the frame-cache aliasing regression).
    #[test]
    fn frame_key_separates_same_meta_different_voxels() {
        let spec = ClusterSpec::accelerator_cluster(1);
        let cfg = RenderConfig::test_size(16);
        let dims = [8u32, 8, 8];
        let a = mgpu_voldata::Volume::in_memory("twin", dims, vec![0.25; 512]);
        let b = mgpu_voldata::Volume::in_memory("twin", dims, vec![0.75; 512]);
        let scene = Scene::orbit(&a, 0.0, 0.0, mgpu_volren::TransferFunction::bone());
        assert_ne!(
            FrameKey::new(&spec, &a, &scene, &cfg),
            FrameKey::new(&spec, &b, &scene, &cfg),
            "same-meta volumes with different voxels must not alias"
        );
    }
}
