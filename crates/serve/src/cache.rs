//! The frame cache: a bounded LRU over fully rendered frames, keyed by a
//! canonical fingerprint of `(cluster, volume, scene, config)`.
//!
//! Repeated views — the common case for interactive sessions orbiting a
//! dataset — are answered without touching the queue or the renderer. The
//! key is the exact `Debug` encoding of every input that can change pixels
//! or timing, so lookups are equality matches, never hash-collision guesses.

use std::collections::HashMap;

use parking_lot::Mutex;

use mgpu_cluster::ClusterSpec;
use mgpu_voldata::Volume;
use mgpu_volren::camera::Scene;
use mgpu_volren::config::RenderConfig;

/// Canonical identity of one frame request.
///
/// Built from the `Debug` encodings of the cluster spec, the volume
/// metadata, the scene (camera, transfer function, background) and the full
/// render config — every input that influences the output. Two keys are
/// equal iff every rendering input is field-for-field identical.
///
/// Volume *content* is identified by its metadata `(name, dims, seed)`;
/// procedural and file volumes are fully determined by it. In-memory
/// volumes with identical metadata but different voxels would alias — don't
/// serve those through one cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FrameKey(String);

impl FrameKey {
    pub fn new(spec: &ClusterSpec, volume: &Volume, scene: &Scene, cfg: &RenderConfig) -> FrameKey {
        FrameKey(format!("{spec:?}|{:?}|{scene:?}|{cfg:?}", volume.meta))
    }

    /// An opaque key for tests and tools.
    pub fn synthetic(tag: impl std::fmt::Display) -> FrameKey {
        FrameKey(format!("synthetic-{tag}"))
    }
}

#[derive(Debug)]
struct CacheInner<V> {
    entries: HashMap<FrameKey, (V, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameCacheSnapshot {
    pub entries: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// A bounded LRU cache from [`FrameKey`] to `V` (the service stores
/// [`crate::RenderedFrame`]s). `capacity` is in entries; zero disables
/// caching entirely (every `get` misses, `insert` is a no-op).
#[derive(Debug)]
pub struct FrameCache<V> {
    capacity: usize,
    inner: Mutex<CacheInner<V>>,
}

impl<V: Clone> FrameCache<V> {
    pub fn new(capacity: usize) -> FrameCache<V> {
        FrameCache {
            capacity,
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up an entry, refreshing its recency on hit.
    pub fn get(&self, key: &FrameKey) -> Option<V> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some((value, last)) => {
                *last = tick;
                let value = value.clone();
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Like [`FrameCache::get`], but a lookup failure does not count as a
    /// miss. This is the worker's in-flight coalescing *re-check* of a key
    /// that already missed at submit time — counting it again would report
    /// every rendered frame as two misses.
    pub fn recheck(&self, key: &FrameKey) -> Option<V> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some((value, last)) => {
                *last = tick;
                let value = value.clone();
                inner.hits += 1;
                Some(value)
            }
            None => None,
        }
    }

    /// Insert (or refresh) an entry, evicting least-recently-used entries
    /// past capacity.
    pub fn insert(&self, key: FrameKey, value: V) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(key, (value, tick));
        while inner.entries.len() > self.capacity {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    inner.entries.remove(&k);
                    inner.evictions += 1;
                }
                None => break,
            }
        }
    }

    pub fn snapshot(&self) -> FrameCacheSnapshot {
        let inner = self.inner.lock();
        FrameCacheSnapshot {
            entries: inner.entries.len(),
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }

    #[cfg(test)]
    fn contains(&self, key: &FrameKey) -> bool {
        self.inner.lock().entries.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u32) -> FrameKey {
        FrameKey::synthetic(tag)
    }

    #[test]
    fn hit_refreshes_and_counts() {
        let c: FrameCache<u32> = FrameCache::new(4);
        c.insert(key(1), 11);
        assert!(c.get(&key(2)).is_none());
        assert_eq!(c.get(&key(1)), Some(11));
        let snap = c.snapshot();
        assert_eq!((snap.hits, snap.misses), (1, 1));
    }

    #[test]
    fn eviction_is_strict_lru_order() {
        let c: FrameCache<u32> = FrameCache::new(2);
        c.insert(key(1), 1);
        c.insert(key(2), 2);
        // Touch 1 so 2 becomes the LRU victim.
        c.get(&key(1)).unwrap();
        c.insert(key(3), 3);
        assert!(c.contains(&key(1)));
        assert!(!c.contains(&key(2)), "2 was least recently used");
        assert!(c.contains(&key(3)));
        // Next eviction removes 1 (3 arrived after the touch of 1).
        c.insert(key(4), 4);
        assert!(!c.contains(&key(1)));
        assert!(c.contains(&key(3)));
        assert!(c.contains(&key(4)));
        assert_eq!(c.snapshot().evictions, 2);
    }

    #[test]
    fn recheck_counts_hits_but_not_misses() {
        let c: FrameCache<u32> = FrameCache::new(2);
        assert!(c.recheck(&key(1)).is_none());
        c.insert(key(1), 1);
        assert_eq!(c.recheck(&key(1)), Some(1));
        let snap = c.snapshot();
        assert_eq!((snap.hits, snap.misses), (1, 0));
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let c: FrameCache<u32> = FrameCache::new(2);
        c.insert(key(1), 1);
        c.insert(key(2), 2);
        c.insert(key(1), 10); // refresh, no eviction: len stays 2
        c.insert(key(3), 3); // victim must be 2, not 1
        assert_eq!(c.get(&key(1)), Some(10));
        assert!(!c.contains(&key(2)));
    }

    #[test]
    fn zero_capacity_disables() {
        let c: FrameCache<u32> = FrameCache::new(0);
        c.insert(key(1), 1);
        assert!(c.get(&key(1)).is_none());
        // A disabled cache records no statistics at all.
        assert_eq!(c.snapshot(), FrameCacheSnapshot::default());
    }

    #[test]
    fn frame_key_separates_every_input() {
        use mgpu_voldata::Dataset;
        use mgpu_volren::TransferFunction;

        let spec = ClusterSpec::accelerator_cluster(2);
        let volume = Dataset::Skull.volume(16);
        let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
        let cfg = RenderConfig::test_size(32);
        let base = FrameKey::new(&spec, &volume, &scene, &cfg);
        assert_eq!(base, FrameKey::new(&spec, &volume, &scene, &cfg));

        let scene2 = Scene::orbit(&volume, 31.0, 20.0, TransferFunction::bone());
        assert_ne!(base, FrameKey::new(&spec, &volume, &scene2, &cfg));
        let cfg2 = RenderConfig::test_size(64);
        assert_ne!(base, FrameKey::new(&spec, &volume, &scene, &cfg2));
        let spec2 = ClusterSpec::accelerator_cluster(4);
        assert_ne!(base, FrameKey::new(&spec2, &volume, &scene, &cfg));
        let volume2 = Dataset::Supernova.volume(16);
        assert_ne!(base, FrameKey::new(&spec, &volume2, &scene, &cfg));
    }
}
