//! The shard router: rendezvous-hash batch keys over N independent
//! [`RenderService`] instances.
//!
//! One service instance serializes every volume behind one queue and one
//! plan cache; under many-volume traffic the volumes contend. A
//! [`ShardedService`] runs N full services side by side and routes each
//! request by its [`BatchKey`] — the same (cluster, volume, config) always
//! lands on the same shard, so a volume's frames keep hitting the shard
//! whose plan cache (and brick store) is warm, while distinct volumes
//! spread across shards and stop contending.
//!
//! Routing uses rendezvous (highest-random-weight) hashing: every shard
//! gets a deterministic per-key score and the max wins. Growing the fleet
//! from N to N+1 shards only moves the keys whose max moved to the new
//! shard (~1/(N+1) of them) — no global reshuffle that would cold-start
//! every plan cache at once.

use std::time::Duration;

use mgpu_voldata::volume::{fnv1a, FNV_OFFSET};

use crate::batch::BatchKey;
use crate::cache::CacheSnapshot;
use crate::{
    AdmissionError, FrameTicket, RenderService, SceneRequest, ServiceConfig, ServiceReport,
};

/// Point-in-time load ("heat") of one shard — what a rebalancer or an
/// operator dashboard watches per shard: queue pressure, throughput, and
/// whether the shard's caches are actually warm for the keys it owns.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHeat {
    /// Index into [`ShardedService::shard`].
    pub shard: usize,
    /// Queued jobs per class, `[batch, normal, interactive]`.
    pub queue_depths: [usize; 3],
    pub frames_completed: u64,
    pub frames_per_sec: f64,
    /// Frame-cache occupancy and hit counters for this shard.
    pub frame_cache: CacheSnapshot,
    /// Plan-cache occupancy and hit counters for this shard.
    pub plan_cache: CacheSnapshot,
    pub mean_queue_wait: Duration,
    /// Tail queue wait (p90) — rises first when a shard runs hot.
    pub queue_wait_p90: Duration,
}

impl ShardHeat {
    /// Build from a shard's already-taken report, so one snapshot can feed
    /// both the heat view and [`ServiceReport::merged`] — see
    /// [`ShardedService::heat_and_merged`].
    pub fn from_report(
        shard: usize,
        queue_depths: [usize; 3],
        report: &ServiceReport,
    ) -> ShardHeat {
        ShardHeat {
            shard,
            queue_depths,
            frames_completed: report.frames_completed,
            frames_per_sec: report.frames_per_sec(),
            frame_cache: report.frame_cache,
            plan_cache: report.plan_cache,
            mean_queue_wait: report.mean_queue_wait,
            queue_wait_p90: report.queue_wait_p90(),
        }
    }

    /// Total queued jobs on this shard.
    pub fn queue_depth(&self) -> usize {
        self.queue_depths.iter().sum()
    }
}

/// FNV-1a over the key bytes, salted with the shard index — the rendezvous
/// score of (key, shard). Stable across runs and platforms (the same hash
/// voldata uses for content fingerprints).
fn rendezvous_score(key: &BatchKey, shard: u64) -> u64 {
    fnv1a(&shard.to_le_bytes(), fnv1a(key.bytes(), FNV_OFFSET))
}

/// The placement policy: which of `shards` owners a key lands on. This is
/// *the* routing function for the whole stack — [`ShardedService`] routes
/// in-process shards with it, and `mgpu-net`'s node `Directory` routes
/// whole render nodes with it, so a key's shard inside one process and its
/// node across processes are chosen by one consistent rule.
pub fn route(key: &BatchKey, shards: usize) -> usize {
    (0..shards as u64)
        .max_by_key(|i| rendezvous_score(key, *i))
        .expect("at least one shard") as usize
}

/// Every owner in preference order (highest rendezvous score first):
/// `ranked(...)[0] == route(...)`, and the tail is the deterministic
/// failover order a multi-node pool walks when the preferred node is down.
pub fn ranked(key: &BatchKey, shards: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..shards).collect();
    order.sort_by_key(|i| std::cmp::Reverse(rendezvous_score(key, *i as u64)));
    order
}

fn rendezvous(key: &BatchKey, shards: usize) -> usize {
    route(key, shards)
}

/// N independent render services behind one handle, with rendezvous routing
/// by batch key. Each shard has its own queue, workers, frame cache and
/// plan cache; admission control applies per shard.
pub struct ShardedService {
    shards: Vec<RenderService>,
}

impl ShardedService {
    /// Start `shards` identical services (each with `config.workers`
    /// workers — total worker threads are `shards × workers`).
    pub fn start(shards: usize, config: ServiceConfig) -> ShardedService {
        assert!(shards >= 1, "sharded service needs at least one shard");
        ShardedService {
            shards: (0..shards)
                .map(|_| RenderService::start(config.clone()))
                .collect(),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns this batch key (deterministic).
    pub fn shard_for(&self, key: &BatchKey) -> usize {
        rendezvous(key, self.shards.len())
    }

    /// Direct access to one shard (reports, cache snapshots).
    pub fn shard(&self, index: usize) -> &RenderService {
        &self.shards[index]
    }

    /// Pre-warm the owning shard's plan cache for `request`'s batch key
    /// (see [`RenderService::prewarm`]). Returns the shard routed to and
    /// whether a plan was actually built (`false` = already warm).
    pub fn prewarm(&self, request: &SceneRequest) -> (usize, bool) {
        let key = BatchKey::of(request);
        let shard = self.shard_for(&key);
        (shard, self.shards[shard].prewarm(request))
    }

    /// Submit one frame request to its owning shard (blocking form — see
    /// [`RenderService::submit`]).
    pub fn submit(&self, request: SceneRequest) -> FrameTicket {
        let key = BatchKey::of(&request);
        self.shards[self.shard_for(&key)].submit(request)
    }

    /// Submit without blocking; sheds with [`AdmissionError`] when the
    /// owning shard's queue is at this priority's bound.
    pub fn try_submit(&self, request: SceneRequest) -> Result<FrameTicket, AdmissionError> {
        let key = BatchKey::of(&request);
        self.shards[self.shard_for(&key)].try_submit(request)
    }

    /// [`RenderService::try_submit_with`] routed to the owning shard: the
    /// completion hook runs on that shard's worker (or inline on a cache
    /// hit). On [`AdmissionError`] the hook never runs.
    pub fn try_submit_with(
        &self,
        request: SceneRequest,
        on_done: impl FnOnce(crate::FrameResult) + Send + 'static,
    ) -> Result<(), AdmissionError> {
        let key = BatchKey::of(&request);
        self.shards[self.shard_for(&key)].try_submit_with(request, on_done)
    }

    /// [`RenderService::try_submit_traced`] routed to the owning shard: the
    /// caller-provided trace travels with the job, so the shard's worker and
    /// renderer record their spans onto the request's end-to-end trace.
    pub fn try_submit_traced(
        &self,
        request: SceneRequest,
        trace: std::sync::Arc<mgpu_obs::Trace>,
        on_done: impl FnOnce(crate::FrameResult) + Send + 'static,
    ) -> Result<(), AdmissionError> {
        let key = BatchKey::of(&request);
        self.shards[self.shard_for(&key)].try_submit_traced(request, trace, on_done)
    }

    pub fn pause(&self) {
        for s in &self.shards {
            s.pause();
        }
    }

    pub fn resume(&self) {
        for s in &self.shards {
            s.resume();
        }
    }

    /// Jobs waiting across all shard queues.
    pub fn queue_len(&self) -> usize {
        self.shards.iter().map(RenderService::queue_len).sum()
    }

    /// Merged accounting across shards (see [`ServiceReport::merged`]).
    pub fn report(&self) -> ServiceReport {
        let reports: Vec<ServiceReport> = self.shards.iter().map(RenderService::report).collect();
        ServiceReport::merged(&reports)
    }

    /// Per-shard accounting, indexed like [`ShardedService::shard`].
    pub fn shard_reports(&self) -> Vec<ServiceReport> {
        self.shards.iter().map(RenderService::report).collect()
    }

    /// Per-shard heat metrics (queue depth, throughput, cache occupancy),
    /// indexed like [`ShardedService::shard`] — the data a rebalancer or a
    /// network front-end's `STATS` request reports.
    pub fn heat(&self) -> Vec<ShardHeat> {
        self.heat_and_merged().0
    }

    /// One coherent stats snapshot: the per-shard heat and the merged
    /// report are derived from the *same* per-shard reports, so the shard
    /// counters always sum to the merged counters even while frames are
    /// completing concurrently.
    pub fn heat_and_merged(&self) -> (Vec<ShardHeat>, ServiceReport) {
        let reports: Vec<ServiceReport> = self.shards.iter().map(RenderService::report).collect();
        let merged = ServiceReport::merged(&reports);
        let heat = reports
            .iter()
            .enumerate()
            .map(|(i, r)| ShardHeat::from_report(i, self.shards[i].queue_depths(), r))
            .collect();
        (heat, merged)
    }

    /// Shut every shard down (draining their queues) and merge the final
    /// reports. Every ticket submitted before the call still resolves.
    pub fn shutdown(self) -> ServiceReport {
        let reports: Vec<ServiceReport> = self
            .shards
            .into_iter()
            .map(RenderService::shutdown)
            .collect();
        ServiceReport::merged(&reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<BatchKey> {
        (0..n).map(BatchKey::synthetic).collect()
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for key in keys(64) {
            let a = rendezvous(&key, 4);
            assert!(a < 4);
            assert_eq!(a, rendezvous(&key, 4), "same key, same shard");
        }
        // Single shard: everything routes to it.
        for key in keys(8) {
            assert_eq!(rendezvous(&key, 1), 0);
        }
    }

    /// `ranked` is the full preference order behind `route`: same winner,
    /// every shard listed exactly once.
    #[test]
    fn ranked_agrees_with_route_and_is_a_permutation() {
        for key in keys(64) {
            let order = ranked(&key, 5);
            assert_eq!(order[0], route(&key, 5));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn keys_spread_over_shards() {
        let mut used = [false; 4];
        for key in keys(256) {
            used[rendezvous(&key, 4)] = true;
        }
        assert!(used.iter().all(|u| *u), "256 keys must touch all 4 shards");
    }

    /// Heat metrics see the load where it actually landed: the shard that
    /// served the traffic reports the frames, the queue depths and a warm
    /// frame cache; idle shards report zeros.
    #[test]
    fn heat_reflects_per_shard_load() {
        use crate::backend::RenderBackend;
        use mgpu_cluster::ClusterSpec;
        use mgpu_voldata::Dataset;
        use mgpu_volren::camera::Scene;
        use mgpu_volren::config::RenderConfig;
        use mgpu_volren::TransferFunction;

        let sharded = ShardedService::start(2, ServiceConfig::default());
        let volume = Dataset::Skull.volume(8);
        let spec = ClusterSpec::accelerator_cluster(1);
        let cfg = RenderConfig::test_size(8);
        let session = sharded.session(spec.clone(), volume.clone(), cfg.clone());
        let owner = sharded.shard_for(&BatchKey::new(&spec, &volume, &cfg));
        for _ in 0..2 {
            // Same scene twice: the second resolves from the frame cache.
            session
                .request(Scene::orbit(&volume, 0.0, 0.0, TransferFunction::bone()))
                .wait();
        }
        let heat = sharded.heat();
        assert_eq!(heat.len(), 2);
        assert_eq!(heat[owner].frames_completed, 2);
        assert_eq!(heat[owner].frame_cache.entries, 1);
        assert!(heat[owner].frame_cache.hits >= 1, "repeat view must hit");
        assert_eq!(heat[1 - owner].frames_completed, 0);
        assert_eq!(heat[1 - owner].frame_cache.entries, 0);
        for h in &heat {
            assert_eq!(h.queue_depth(), 0, "drained after wait()");
        }
        // The merged report folds the same occupancy numbers.
        let merged = sharded.report();
        assert_eq!(merged.frame_cache.entries, 1);
        assert_eq!(
            merged.frame_cache.capacity,
            ServiceConfig::default().cache_frames * 2
        );
    }

    /// The rendezvous property: growing the fleet moves a key only if its
    /// new-max score belongs to the added shard — nothing shuffles between
    /// pre-existing shards (their plan caches stay warm).
    #[test]
    fn adding_a_shard_only_moves_keys_to_the_new_shard() {
        let mut moved = 0;
        for key in keys(512) {
            let before = rendezvous(&key, 4);
            let after = rendezvous(&key, 5);
            if after != before {
                assert_eq!(after, 4, "a moved key may only land on the new shard");
                moved += 1;
            }
        }
        assert!(moved > 0, "some keys should adopt the new shard");
        assert!(
            moved < 512 / 2,
            "rendezvous must not reshuffle wholesale ({moved}/512 moved)"
        );
    }
}
