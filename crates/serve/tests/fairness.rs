//! Starvation/fairness and admission-shedding properties of the job queue,
//! checked against a deterministic single-worker simulation (no real
//! renders: these are pure scheduling properties).
//!
//! * **Fairness**: once an `Interactive` job is queued, the only
//!   lower-priority work that may still render ahead of it is the remainder
//!   of the batch already in flight — at most `max_batch − 1` drained
//!   frames. The next batch a worker forms always pops the interactive job
//!   first.
//! * **Shedding**: a class's submissions are accepted exactly while the
//!   queue is below that class's bound, so a filling queue rejects `Batch`
//!   before `Normal` before `Interactive`.

use proptest::prelude::*;

use mgpu_cluster::ClusterSpec;
use mgpu_serve::queue::{JobQueue, Priority, QueueBounds, QueuedJob, Reply};
use mgpu_serve::{BatchKey, SceneRequest};
use mgpu_voldata::Dataset;
use mgpu_volren::camera::Scene;
use mgpu_volren::{RenderConfig, TransferFunction};

fn request(priority: Priority) -> SceneRequest {
    let volume = Dataset::Skull.volume(8);
    SceneRequest {
        spec: ClusterSpec::accelerator_cluster(1),
        scene: Scene::orbit(&volume, 0.0, 0.0, TransferFunction::bone()),
        config: RenderConfig::test_size(8),
        volume,
        priority,
    }
}

fn push(q: &JobQueue, priority: Priority, key: u32) -> u64 {
    let (tx, _rx) = crossbeam::channel::bounded(1);
    q.push(
        request(priority),
        BatchKey::synthetic(key),
        Reply::channel(tx),
        mgpu_obs::Trace::detached(0),
    )
}

/// One simulated worker: a batch is formed atomically (pop + drain, exactly
/// like `worker_loop`), then renders one frame per step so pushes can
/// interleave mid-batch.
struct SimWorker {
    /// Remaining frames of the in-flight batch, with a "was drained" flag
    /// (the batch leader was popped, the rest drained).
    batch: std::collections::VecDeque<(QueuedJob, bool)>,
    max_batch: usize,
}

impl SimWorker {
    /// Render one frame if any work exists; returns (job, was_drained).
    fn step(&mut self, q: &JobQueue) -> Option<(QueuedJob, bool)> {
        if self.batch.is_empty() {
            if q.is_empty() {
                return None;
            }
            let first = q.pop().expect("non-empty queue");
            let key = first.batch_key.clone();
            self.batch.push_back((first, false));
            for drained in q.drain_matching(&key, self.max_batch.saturating_sub(1)) {
                self.batch.push_back((drained, true));
            }
        }
        self.batch.pop_front()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An interactive job is never delayed by more than `max_batch − 1`
    /// drained lower-priority frames (single worker; one interactive in
    /// flight at a time — the interactive-user story).
    #[test]
    fn interactive_delay_is_bounded_by_one_batch_remainder(
        ops in prop::collection::vec((0u8..5, 0u32..3), 4..64),
        max_batch in 1usize..5,
    ) {
        let q = JobQueue::new(false, QueueBounds::default());
        let mut worker = SimWorker {
            batch: std::collections::VecDeque::new(),
            max_batch,
        };
        // Pending interactive jobs: seq → lower-priority drained frames
        // rendered since its push.
        let mut pending: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();

        for (op, key) in ops {
            match op {
                // Push lower-priority work (two flavours).
                0 => {
                    push(&q, Priority::Batch, key);
                }
                1 => {
                    push(&q, Priority::Normal, key);
                }
                // Push interactive — but only one in flight at a time.
                2 if pending.is_empty() => {
                    let seq = push(&q, Priority::Interactive, key);
                    pending.insert(seq, 0);
                }
                // Everything else (incl. a busy interactive slot): render.
                _ => {
                    if let Some((job, was_drained)) = worker.step(&q) {
                        if job.priority == Priority::Interactive {
                            if let Some(delay) = pending.remove(&job.seq) {
                                prop_assert!(
                                    delay < max_batch,
                                    "interactive seq {} delayed by {} drained \
                                     lower-priority frames (max_batch {})",
                                    job.seq, delay, max_batch
                                );
                            }
                        } else if was_drained {
                            for delay in pending.values_mut() {
                                *delay += 1;
                            }
                        } else {
                            // A lower-priority batch LEADER popped while an
                            // interactive was queued would be a priority
                            // inversion — the queue must never do that.
                            prop_assert!(
                                pending.is_empty(),
                                "popped {:?} leader over a queued interactive",
                                job.priority
                            );
                        }
                    }
                }
            }
        }
        // Drain to completion: the bound must hold for stragglers too.
        while let Some((job, was_drained)) = worker.step(&q) {
            if job.priority == Priority::Interactive {
                if let Some(delay) = pending.remove(&job.seq) {
                    prop_assert!(delay < max_batch);
                }
            } else if was_drained {
                for delay in pending.values_mut() {
                    *delay += 1;
                }
            } else {
                prop_assert!(pending.is_empty());
            }
        }
        prop_assert!(pending.is_empty(), "every interactive job rendered");
    }

    /// Admission under a filling queue: a class is accepted exactly while
    /// the queue depth is below its bound — so `Batch` sheds first, then
    /// `Normal`, and `Interactive` holds out the longest.
    #[test]
    fn full_queue_sheds_batch_before_normal_before_interactive(
        ops in prop::collection::vec(0u8..4, 4..64),
        batch_bound in 0usize..4,
        extra_normal in 0usize..4,
        extra_interactive in 0usize..4,
    ) {
        let bounds = QueueBounds {
            batch: batch_bound,
            normal: batch_bound + extra_normal,
            interactive: batch_bound + extra_normal + extra_interactive,
        };
        // Paused: depth only changes through accepted pushes and pops we
        // issue ourselves... except pop blocks on a paused queue, so run
        // unpaused and never step a worker; try_push/pop are the only moves.
        let q = JobQueue::new(false, bounds);
        let mut depth = 0usize;

        for op in ops {
            let priority = match op {
                0 => Priority::Batch,
                1 => Priority::Normal,
                2 => Priority::Interactive,
                _ => {
                    // Pop one job to free capacity (skip when empty).
                    if depth > 0 {
                        q.pop().expect("depth tracked");
                        depth -= 1;
                    }
                    continue;
                }
            };
            let (tx, _rx) = crossbeam::channel::bounded(1);
            let outcome =
                q.try_push(
                request(priority),
                BatchKey::synthetic(0u32),
                Reply::channel(tx),
                mgpu_obs::Trace::detached(0),
            );
            let limit = bounds.limit(priority);
            if depth < limit {
                prop_assert!(outcome.is_ok(), "{priority:?} under its bound must admit");
                depth += 1;
            } else {
                let (err, reply) = outcome.expect_err("at or over the bound must shed");
                reply.cancel();
                prop_assert_eq!(err.priority, priority);
                prop_assert_eq!(err.queued, depth);
                prop_assert_eq!(err.limit, limit);
                // The shed ordering: anything a higher class would still
                // accept, this class's rejection does not contradict —
                // i.e. rejection thresholds are ordered with the classes.
                for higher in Priority::ALL.iter().filter(|p| **p > priority) {
                    prop_assert!(bounds.limit(*higher) >= limit);
                }
            }
        }
    }
}
