//! Property: for ANY mix of scenes, worker counts, batch limits, cache
//! sizes, plan-cache sizes and admission bounds — i.e. any concurrent
//! interleaving the service can produce — every frame delivered by the
//! service is bit-identical to a sequential direct `render` call with the
//! same request.

use proptest::prelude::*;

use mgpu_cluster::ClusterSpec;
use mgpu_serve::{Priority, QueueBounds, RenderBackend, RenderService, ServiceConfig};
use mgpu_voldata::Dataset;
use mgpu_volren::camera::Scene;
use mgpu_volren::renderer::render;
use mgpu_volren::{RenderConfig, TransferFunction};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn any_interleaving_matches_sequential_direct_renders(
        azimuth_steps in prop::collection::vec(0u32..12, 3..9),
        workers in 1usize..4,
        max_batch in 1usize..5,
        cache_frames in 0usize..3,
        plan_cache_plans in 0usize..3,
        queue_bound in 1usize..6,
        priority_bits in prop::collection::vec(0u32..3, 3..9),
    ) {
        let spec = ClusterSpec::accelerator_cluster(2);
        let cfg = RenderConfig::test_size(24);
        let volume = Dataset::Skull.volume(16);
        let scene_of = |step: u32| {
            Scene::orbit(&volume, step as f32 * 30.0, 15.0, TransferFunction::bone())
        };

        // Sequential ground truth, one direct render per request (duplicate
        // azimuths included: the service may serve them from cache, direct
        // renders recompute them — outputs must match either way).
        let direct: Vec<_> = azimuth_steps
            .iter()
            .map(|s| render(&spec, &volume, &scene_of(*s), &cfg).image)
            .collect();

        let service = RenderService::start(ServiceConfig {
            workers,
            max_batch,
            cache_frames,
            plan_cache_plans,
            // A tight bound exercises the blocking submit path: the test
            // thread stalls at the bound until the workers free capacity.
            queue_bounds: QueueBounds {
                batch: queue_bound,
                normal: queue_bound + 1,
                interactive: queue_bound + 2,
            },
            start_paused: false,
        });
        let session = service.session(spec.clone(), volume.clone(), cfg.clone());
        let tickets: Vec<_> = azimuth_steps
            .iter()
            .zip(priority_bits.iter().cycle())
            .map(|(s, p)| {
                let priority = match p {
                    0 => Priority::Batch,
                    1 => Priority::Normal,
                    _ => Priority::Interactive,
                };
                session.request_with_priority(scene_of(*s), priority)
            })
            .collect();

        for (i, ticket) in tickets.into_iter().enumerate() {
            let frame = ticket.wait();
            prop_assert_eq!(
                &*frame.image,
                &direct[i],
                "frame {} (azimuth step {}) diverged under workers={} max_batch={} cache={} plans={} bound={}",
                i, azimuth_steps[i], workers, max_batch, cache_frames, plan_cache_plans, queue_bound
            );
        }
        let report = service.shutdown();
        prop_assert_eq!(report.frames_completed, azimuth_steps.len() as u64);
        prop_assert_eq!(report.frames_failed, 0);
        prop_assert_eq!(report.admission_rejected, 0, "blocking submit never sheds");
    }
}
