//! End-to-end tests of the render service: per-frame bit-equivalence with
//! direct renders, staging savings from batching and cross-batch plan reuse,
//! cache behaviour, admission control, worker fault containment, sharding,
//! and clean shutdown semantics.

use mgpu_cluster::ClusterSpec;
use mgpu_serve::{
    BackendError, Priority, QueueBounds, RenderBackend, RenderService, SceneRequest, ServiceConfig,
    ShardedService,
};
use mgpu_voldata::Dataset;
use mgpu_volren::camera::Scene;
use mgpu_volren::renderer::render;
use mgpu_volren::{RenderConfig, TransferFunction};

fn scene_for(volume: &mgpu_voldata::Volume, azimuth: f32) -> Scene {
    Scene::orbit(volume, azimuth, 20.0, TransferFunction::bone())
}

/// The acceptance scenario: two concurrent sessions, ≥8 queued frames each,
/// every service frame bit-identical to a direct `render` call.
#[test]
fn two_sessions_eight_frames_each_match_direct_renders() {
    let service = RenderService::start(ServiceConfig {
        workers: 2,
        max_batch: 4,
        cache_frames: 32,
        ..ServiceConfig::default()
    });
    let spec = ClusterSpec::accelerator_cluster(2);
    let cfg = RenderConfig::test_size(32);
    let skull = Dataset::Skull.volume(16);
    let supernova = Dataset::Supernova.volume(16);

    let s1 = service.session(spec.clone(), skull.clone(), cfg.clone());
    let s2 = service.session(spec.clone(), supernova.clone(), cfg.clone());

    let azimuths: Vec<f32> = (0..8).map(|i| i as f32 * 36.0).collect();
    let t1: Vec<_> = azimuths
        .iter()
        .map(|az| s1.request(scene_for(&skull, *az)))
        .collect();
    let t2: Vec<_> = azimuths
        .iter()
        .map(|az| s2.request(scene_for(&supernova, *az)))
        .collect();
    assert_eq!(s1.frames_submitted(), 8);
    assert_eq!(s2.frames_submitted(), 8);

    for (az, ticket) in azimuths.iter().zip(t1) {
        let frame = ticket.wait();
        let direct = render(&spec, &skull, &scene_for(&skull, *az), &cfg);
        assert_eq!(*frame.image, direct.image, "skull az {az}");
    }
    for (az, ticket) in azimuths.iter().zip(t2) {
        let frame = ticket.wait();
        let direct = render(&spec, &supernova, &scene_for(&supernova, *az), &cfg);
        assert_eq!(*frame.image, direct.image, "supernova az {az}");
    }

    let report = service.shutdown();
    assert_eq!(report.frames_submitted, 16);
    assert_eq!(report.frames_completed, 16);
    assert_eq!(report.frames_rendered + report.cache_hits, 16);
    assert_eq!(report.frames_failed, 0);
}

/// Batched same-volume requests stage each brick once; unbatched requests
/// pay the full staging cost per frame. (Plan cache off: this isolates
/// within-batch sharing from cross-batch reuse.)
#[test]
fn batching_cuts_brick_stagings() {
    let frames = 6;
    let run = |max_batch: usize| {
        let service = RenderService::start(ServiceConfig {
            workers: 1,
            max_batch,
            cache_frames: 0,     // isolate batching from caching
            plan_cache_plans: 0, // and from cross-batch plan reuse
            start_paused: true,
            ..ServiceConfig::default()
        });
        let spec = ClusterSpec::accelerator_cluster(2);
        let cfg = RenderConfig::test_size(32);
        let volume = Dataset::Skull.volume(16);
        let session = service.session(spec, volume.clone(), cfg);
        let tickets: Vec<_> = (0..frames)
            .map(|i| session.request(scene_for(&volume, i as f32 * 30.0)))
            .collect();
        service.resume();
        let bricks = tickets
            .into_iter()
            .map(|t| {
                t.wait()
                    .report
                    .expect("local frame carries the report")
                    .bricks as u64
            })
            .max()
            .unwrap();
        (service.shutdown(), bricks)
    };

    let (batched, bricks) = run(frames);
    let (unbatched, _) = run(1);

    // One paused single-worker batch: every frame in one batch, every brick
    // staged exactly once.
    assert_eq!(batched.batches, 1);
    assert_eq!(batched.batch_occupancy(), frames as f64);
    assert_eq!(batched.brick_stagings, bricks);

    // Unbatched: one plan per frame, full staging cost each time.
    assert_eq!(unbatched.batches, frames as u64);
    assert_eq!(unbatched.batch_occupancy(), 1.0);
    assert_eq!(unbatched.brick_stagings, bricks * frames as u64);
    assert!(
        batched.brick_stagings < unbatched.brick_stagings,
        "batching must reduce stagings: {} vs {}",
        batched.brick_stagings,
        unbatched.brick_stagings
    );
}

/// The tentpole effect: with the plan cache on, *separate* batches of the
/// same (cluster, volume, config) reuse one plan and its warm brick store —
/// every brick is staged exactly once across all batches, not once per
/// batch. With the cache off, every batch re-stages (PR 2 behaviour).
#[test]
fn plan_cache_reuses_staging_across_batches() {
    let waves = 3;
    let frames_per_wave = 2;
    let run = |plan_cache_plans: usize| {
        let service = RenderService::start(ServiceConfig {
            workers: 1,
            max_batch: frames_per_wave,
            cache_frames: 0, // isolate plan reuse from frame caching
            plan_cache_plans,
            ..ServiceConfig::default()
        });
        let spec = ClusterSpec::accelerator_cluster(2);
        let cfg = RenderConfig::test_size(32);
        let volume = Dataset::Skull.volume(16);
        let session = service.session(spec.clone(), volume.clone(), cfg.clone());
        let mut bricks = 0u64;
        let mut az = 0.0f32;
        // Waiting out each wave forces wave boundaries = batch boundaries:
        // the queue is empty before the next wave starts.
        for _ in 0..waves {
            let tickets: Vec<_> = (0..frames_per_wave)
                .map(|_| {
                    az += 25.0;
                    session.request(scene_for(&volume, az))
                })
                .collect();
            for (t, a) in tickets.into_iter().zip([az - 50.0, az - 25.0]) {
                let frame = t.wait();
                bricks = bricks.max(frame.report.as_ref().expect("local report").bricks as u64);
                let direct = render(&spec, &volume, &scene_for(&volume, a + 25.0), &cfg);
                assert_eq!(
                    *frame.image, direct.image,
                    "plan reuse must not change pixels"
                );
            }
        }
        (service.shutdown(), bricks)
    };

    let (warm, bricks) = run(8);
    let (cold, _) = run(0);

    assert!(warm.batches >= waves as u64, "waves force separate batches");
    // Warm: only the first batch stages bricks; all later batches reuse the
    // warm store, so total stagings never exceed the brick count.
    assert!(
        warm.brick_stagings <= bricks,
        "warm stagings {} must not exceed the brick count {bricks}",
        warm.brick_stagings
    );
    assert_eq!(warm.plan_cache.misses, 1, "one cold plan build");
    assert!(
        warm.plan_cache.hits >= warm.batches - 1,
        "later batches must hit the plan cache ({} hits, {} batches)",
        warm.plan_cache.hits,
        warm.batches
    );
    assert!(warm.plan_cache_hit_rate() > 0.0);

    // Cold: every batch rebuilds the plan and re-stages its bricks.
    assert_eq!(cold.plan_cache.hits, 0);
    assert!(
        cold.brick_stagings > bricks,
        "every cold batch re-stages: {} stagings for {bricks} bricks",
        cold.brick_stagings
    );
    assert!(
        warm.brick_stagings < cold.brick_stagings,
        "cross-batch reuse must cut stagings: {} vs {}",
        warm.brick_stagings,
        cold.brick_stagings
    );
    assert!(
        warm.brick_reuses > cold.brick_reuses,
        "warm stores must answer more brick fetches: {} vs {}",
        warm.brick_reuses,
        cold.brick_reuses
    );
}

/// Repeated views hit the frame cache and share the rendered allocation.
#[test]
fn repeated_view_hits_the_cache() {
    let service = RenderService::start(ServiceConfig::default());
    let spec = ClusterSpec::accelerator_cluster(1);
    let cfg = RenderConfig::test_size(24);
    let volume = Dataset::Plume.volume(8);
    let session = service.session(spec, volume.clone(), cfg);

    let scene = Scene::orbit(&volume, 45.0, 10.0, TransferFunction::smoke());
    let first = session.request(scene.clone()).wait();
    assert!(!first.from_cache);
    let second = session.request(scene.clone()).wait();
    assert!(second.from_cache, "identical request must hit the cache");
    assert_eq!(first.image, second.image);

    // A different view renders fresh.
    let third = session
        .request(Scene::orbit(&volume, 46.0, 10.0, TransferFunction::smoke()))
        .wait();
    assert!(!third.from_cache);

    let report = service.shutdown();
    assert_eq!(report.cache_hits, 1);
    assert_eq!(report.frames_rendered, 2);
    assert!((report.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
}

/// Interactive requests overtake queued batch work. Pop order is observed
/// through the cache: both jobs request the SAME scene, so whichever the
/// single worker renders first populates the cache and the other coalesces
/// onto it — the interactive frame must be the rendered one even though the
/// batch job was submitted first.
#[test]
fn interactive_requests_overtake_batch_work() {
    let service = RenderService::start(ServiceConfig {
        workers: 1,
        max_batch: 1, // isolate priority order from batch grouping
        cache_frames: 4,
        start_paused: true,
        ..ServiceConfig::default()
    });
    let spec = ClusterSpec::accelerator_cluster(1);
    let cfg = RenderConfig::test_size(16);
    let volume = Dataset::Skull.volume(8);
    let session = service.session(spec, volume.clone(), cfg);

    let scene = scene_for(&volume, 10.0);
    let batch_ticket = session.request_with_priority(scene.clone(), Priority::Batch);
    let interactive_ticket = session.request_with_priority(scene, Priority::Interactive);
    service.resume();

    let b = batch_ticket.wait();
    let i = interactive_ticket.wait();
    assert!(
        !i.from_cache,
        "the interactive job must have been popped (and rendered) first"
    );
    assert!(
        b.from_cache,
        "the earlier-submitted batch job must have coalesced onto the \
         interactive render"
    );
    assert_eq!(*b.image, *i.image);
    let report = service.shutdown();
    assert_eq!(report.frames_completed, 2);
    assert_eq!(report.frames_rendered, 1);
    // The coalesced batch job still counts toward queue-wait accounting.
    assert_eq!(report.jobs_popped, 2);
}

/// A panic inside the render (here: a degenerate 0×0 image config) fails
/// only the affected job — with an explicit error, not a dropped channel —
/// and the worker thread survives to render subsequent frames.
#[test]
fn render_panic_fails_the_job_but_not_the_worker() {
    let service = RenderService::start(ServiceConfig {
        workers: 1, // a single worker: if it died, nothing would render
        cache_frames: 8,
        ..ServiceConfig::default()
    });
    let spec = ClusterSpec::accelerator_cluster(1);
    let volume = Dataset::Skull.volume(8);

    let poisoned = service
        .submit(SceneRequest {
            spec: spec.clone(),
            volume: volume.clone(),
            scene: scene_for(&volume, 0.0),
            config: RenderConfig::test_size(0), // 0×0 image: render panics
            priority: Priority::Normal,
        })
        .wait_result();
    let err = poisoned.expect_err("degenerate config must fail the job");
    assert!(
        err.message().contains("degenerate image"),
        "error must carry the panic message, got: {err}"
    );

    // The same worker must still be alive and rendering.
    let cfg = RenderConfig::test_size(16);
    let frame = service
        .submit(SceneRequest {
            spec: spec.clone(),
            volume: volume.clone(),
            scene: scene_for(&volume, 30.0),
            config: cfg.clone(),
            priority: Priority::Normal,
        })
        .wait_result()
        .expect("worker survived the poisoned job");
    let direct = render(&spec, &volume, &scene_for(&volume, 30.0), &cfg);
    assert_eq!(*frame.image, direct.image);

    let report = service.shutdown();
    assert_eq!(report.frames_failed, 1);
    assert_eq!(report.frames_rendered, 1);
}

/// `FrameTicket::wait` (the panicking form) reports the explicit render
/// failure, not a misleading channel disconnect.
#[test]
#[should_panic(expected = "render service job failed")]
fn wait_panics_with_the_explicit_failure() {
    let service = RenderService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let spec = ClusterSpec::accelerator_cluster(1);
    let volume = Dataset::Skull.volume(8);
    let ticket = service.submit(SceneRequest {
        spec,
        scene: scene_for(&volume, 0.0),
        volume,
        config: RenderConfig::test_size(0),
        priority: Priority::Normal,
    });
    let _ = ticket.wait();
}

/// Two in-memory volumes with identical metadata but different voxels must
/// not alias in the frame cache or batch together (the `content`
/// fingerprint regression).
#[test]
fn same_meta_volumes_with_different_voxels_do_not_alias() {
    let service = RenderService::start(ServiceConfig {
        workers: 1,
        cache_frames: 16,
        ..ServiceConfig::default()
    });
    let spec = ClusterSpec::accelerator_cluster(1);
    let cfg = RenderConfig::test_size(24);
    let dims = [8u32, 8, 8];
    let lo = mgpu_voldata::Volume::in_memory("twin", dims, vec![0.1; 512]);
    let hi = mgpu_voldata::Volume::in_memory("twin", dims, vec![0.9; 512]);
    assert_eq!(lo.meta.name, hi.meta.name);
    assert_eq!(lo.meta.dims, hi.meta.dims);

    let submit = |volume: &mgpu_voldata::Volume| {
        service
            .submit(SceneRequest {
                spec: spec.clone(),
                volume: volume.clone(),
                scene: Scene::orbit(volume, 15.0, 10.0, TransferFunction::bone()),
                config: cfg.clone(),
                priority: Priority::Normal,
            })
            .wait()
    };
    let first = submit(&lo);
    let second = submit(&hi);
    assert!(
        !second.from_cache,
        "same-meta volume with different voxels must not hit the cache"
    );
    // Each frame matches ITS OWN volume's direct render.
    for (volume, frame) in [(&lo, &first), (&hi, &second)] {
        let scene = Scene::orbit(volume, 15.0, 10.0, TransferFunction::bone());
        let direct = render(&spec, volume, &scene, &cfg);
        assert_eq!(*frame.image, direct.image);
    }
    let report = service.shutdown();
    assert_eq!(report.frames_rendered, 2);
    assert_eq!(report.cache_hits, 0);
}

/// Under a full queue, `try_submit` sheds `Batch` first, `Normal` next and
/// `Interactive` last, with descriptive errors; accepted work still renders.
#[test]
fn admission_control_sheds_lowest_priority_first() {
    let service = RenderService::start(ServiceConfig {
        workers: 1,
        cache_frames: 0,
        queue_bounds: QueueBounds {
            batch: 1,
            normal: 2,
            interactive: 3,
        },
        start_paused: true, // depth only grows until we resume
        ..ServiceConfig::default()
    });
    let spec = ClusterSpec::accelerator_cluster(1);
    let cfg = RenderConfig::test_size(16);
    let volume = Dataset::Skull.volume(8);
    let session = service.session(spec, volume.clone(), cfg);

    let mut az = 0.0f32;
    let mut req = |priority| {
        az += 20.0;
        session.try_request_with_priority(scene_for(&volume, az), priority)
    };

    let t_batch = req(Priority::Batch).expect("first batch job admitted");
    let shed = match req(Priority::Batch) {
        Err(BackendError::Admission(err)) => err,
        Ok(_) => panic!("batch bound should shed"),
        Err(other) => panic!("expected admission shedding, got {other}"),
    };
    assert_eq!((shed.queued, shed.limit), (1, 1));
    assert_eq!(shed.priority, Priority::Batch);
    assert!(shed.to_string().contains("queue full"));

    let t_normal = req(Priority::Normal).expect("normal still admitted");
    assert!(req(Priority::Normal).is_err(), "normal bound reached");
    let t_inter = req(Priority::Interactive).expect("interactive admitted last");
    assert!(req(Priority::Interactive).is_err(), "queue entirely full");

    assert_eq!(service.queue_depths(), [1, 1, 1]);
    service.resume();
    for t in [t_batch, t_normal, t_inter] {
        t.wait();
    }
    let report = service.shutdown();
    assert_eq!(report.admission_rejected, 3);
    assert_eq!(report.frames_rendered, 3);
    assert_eq!(
        report.frames_submitted, 3,
        "shed frames are not submissions"
    );
}

// (A session can no longer outlive its service at all: `SceneSession`
// borrows the backend, so submitting through a session after `shutdown`
// consumed the service is now a compile error rather than the runtime
// panic the pre-`RenderBackend` API produced.)

/// Shutdown drains every queued job; all tickets resolve.
#[test]
fn shutdown_resolves_all_pending_tickets() {
    let service = RenderService::start(ServiceConfig {
        workers: 1,
        max_batch: 2,
        cache_frames: 4,
        start_paused: true, // jobs pile up before any worker runs
        ..ServiceConfig::default()
    });
    let spec = ClusterSpec::accelerator_cluster(1);
    let cfg = RenderConfig::test_size(16);
    let volume = Dataset::Skull.volume(8);
    // Raw (non-borrowing) tickets: shutdown must resolve them even though
    // they are redeemed only afterwards.
    let tickets: Vec<_> = (0..5)
        .map(|i| {
            service.submit(SceneRequest {
                spec: spec.clone(),
                volume: volume.clone(),
                scene: scene_for(&volume, i as f32 * 20.0),
                config: cfg.clone(),
                priority: Priority::Normal,
            })
        })
        .collect();
    assert_eq!(service.queue_len(), 5);
    // Shutdown (queue close) drains even a paused queue.
    let report = service.shutdown();
    assert_eq!(report.frames_completed, 5);
    for t in tickets {
        let _ = t.wait(); // already resolved
    }
}

/// Direct submit (no session) with an explicit request.
#[test]
fn raw_submit_roundtrip() {
    let service = RenderService::start(ServiceConfig::default());
    let spec = ClusterSpec::accelerator_cluster(1);
    let cfg = RenderConfig::test_size(16);
    let volume = Dataset::Skull.volume(8);
    let scene = scene_for(&volume, 0.0);
    let frame = service
        .submit(SceneRequest {
            spec: spec.clone(),
            volume: volume.clone(),
            scene: scene.clone(),
            config: cfg.clone(),
            priority: Priority::Normal,
        })
        .wait();
    let direct = render(&spec, &volume, &scene, &cfg);
    assert_eq!(*frame.image, direct.image);
    assert_eq!(frame.report.job, direct.report.job);
}

/// The shard router: sessions for distinct volumes land on their rendezvous
/// shard, frames stay bit-identical to direct renders, and one volume's
/// frames never spread across shards (its plan cache stays warm).
#[test]
fn sharded_service_routes_by_volume_and_stays_bit_identical() {
    let sharded = ShardedService::start(
        2,
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let spec = ClusterSpec::accelerator_cluster(2);
    let cfg = RenderConfig::test_size(24);
    // A handful of distinct volumes: with rendezvous routing some land on
    // each shard (16 keys on 2 shards — all on one side is 2^-15).
    let volumes: Vec<_> = (0..16)
        .map(|i| {
            mgpu_voldata::Volume::in_memory(
                format!("shard-vol-{i}"),
                [8, 8, 8],
                vec![0.05 * (i + 1) as f32; 512],
            )
        })
        .collect();

    let mut tickets = Vec::new();
    for volume in &volumes {
        let session = sharded.session(spec.clone(), volume.clone(), cfg.clone());
        tickets.push((volume, session.request(scene_for(volume, 40.0))));
    }
    for (volume, ticket) in tickets {
        let frame = ticket.wait();
        let direct = render(&spec, volume, &scene_for(volume, 40.0), &cfg);
        assert_eq!(*frame.image, direct.image, "{}", volume.meta.name);
    }

    let per_shard = sharded.shard_reports();
    assert_eq!(per_shard.len(), 2);
    assert!(
        per_shard.iter().all(|r| r.frames_rendered > 0),
        "16 volumes must spread over both shards: {:?}",
        per_shard
            .iter()
            .map(|r| r.frames_rendered)
            .collect::<Vec<_>>()
    );
    let merged = sharded.shutdown();
    assert_eq!(merged.frames_completed, 16);
    assert_eq!(merged.frames_rendered, 16);
}
