//! End-to-end tests of the render service: per-frame bit-equivalence with
//! direct renders, staging savings from batching, cache behaviour, and
//! clean shutdown semantics.

use mgpu_cluster::ClusterSpec;
use mgpu_serve::{Priority, RenderService, SceneRequest, ServiceConfig};
use mgpu_voldata::Dataset;
use mgpu_volren::camera::Scene;
use mgpu_volren::renderer::render;
use mgpu_volren::{RenderConfig, TransferFunction};

fn scene_for(volume: &mgpu_voldata::Volume, azimuth: f32) -> Scene {
    Scene::orbit(volume, azimuth, 20.0, TransferFunction::bone())
}

/// The acceptance scenario: two concurrent sessions, ≥8 queued frames each,
/// every service frame bit-identical to a direct `render` call.
#[test]
fn two_sessions_eight_frames_each_match_direct_renders() {
    let service = RenderService::start(ServiceConfig {
        workers: 2,
        max_batch: 4,
        cache_frames: 32,
        start_paused: false,
    });
    let spec = ClusterSpec::accelerator_cluster(2);
    let cfg = RenderConfig::test_size(32);
    let skull = Dataset::Skull.volume(16);
    let supernova = Dataset::Supernova.volume(16);

    let s1 = service.session(spec.clone(), skull.clone(), cfg.clone());
    let s2 = service.session(spec.clone(), supernova.clone(), cfg.clone());

    let azimuths: Vec<f32> = (0..8).map(|i| i as f32 * 36.0).collect();
    let t1: Vec<_> = azimuths
        .iter()
        .map(|az| s1.request(scene_for(&skull, *az)))
        .collect();
    let t2: Vec<_> = azimuths
        .iter()
        .map(|az| s2.request(scene_for(&supernova, *az)))
        .collect();
    assert_eq!(s1.frames_submitted(), 8);
    assert_eq!(s2.frames_submitted(), 8);

    for (az, ticket) in azimuths.iter().zip(t1) {
        let frame = ticket.wait();
        let direct = render(&spec, &skull, &scene_for(&skull, *az), &cfg);
        assert_eq!(*frame.image, direct.image, "skull az {az}");
    }
    for (az, ticket) in azimuths.iter().zip(t2) {
        let frame = ticket.wait();
        let direct = render(&spec, &supernova, &scene_for(&supernova, *az), &cfg);
        assert_eq!(*frame.image, direct.image, "supernova az {az}");
    }

    let report = service.shutdown();
    assert_eq!(report.frames_submitted, 16);
    assert_eq!(report.frames_completed, 16);
    assert_eq!(report.frames_rendered + report.cache_hits, 16);
}

/// Batched same-volume requests stage each brick once; unbatched requests
/// pay the full staging cost per frame.
#[test]
fn batching_cuts_brick_stagings() {
    let frames = 6;
    let run = |max_batch: usize| {
        let service = RenderService::start(ServiceConfig {
            workers: 1,
            max_batch,
            cache_frames: 0, // isolate batching from caching
            start_paused: true,
        });
        let spec = ClusterSpec::accelerator_cluster(2);
        let cfg = RenderConfig::test_size(32);
        let volume = Dataset::Skull.volume(16);
        let session = service.session(spec, volume.clone(), cfg);
        let tickets: Vec<_> = (0..frames)
            .map(|i| session.request(scene_for(&volume, i as f32 * 30.0)))
            .collect();
        service.resume();
        let bricks = tickets
            .into_iter()
            .map(|t| t.wait().report.bricks as u64)
            .max()
            .unwrap();
        (service.shutdown(), bricks)
    };

    let (batched, bricks) = run(frames);
    let (unbatched, _) = run(1);

    // One paused single-worker batch: every frame in one batch, every brick
    // staged exactly once.
    assert_eq!(batched.batches, 1);
    assert_eq!(batched.batch_occupancy(), frames as f64);
    assert_eq!(batched.brick_stagings, bricks);

    // Unbatched: one plan per frame, full staging cost each time.
    assert_eq!(unbatched.batches, frames as u64);
    assert_eq!(unbatched.batch_occupancy(), 1.0);
    assert_eq!(unbatched.brick_stagings, bricks * frames as u64);
    assert!(
        batched.brick_stagings < unbatched.brick_stagings,
        "batching must reduce stagings: {} vs {}",
        batched.brick_stagings,
        unbatched.brick_stagings
    );
}

/// Repeated views hit the frame cache and share the rendered allocation.
#[test]
fn repeated_view_hits_the_cache() {
    let service = RenderService::start(ServiceConfig::default());
    let spec = ClusterSpec::accelerator_cluster(1);
    let cfg = RenderConfig::test_size(24);
    let volume = Dataset::Plume.volume(8);
    let session = service.session(spec, volume.clone(), cfg);

    let scene = Scene::orbit(&volume, 45.0, 10.0, TransferFunction::smoke());
    let first = session.request(scene.clone()).wait();
    assert!(!first.from_cache);
    let second = session.request(scene.clone()).wait();
    assert!(second.from_cache, "identical request must hit the cache");
    assert_eq!(first.image, second.image);

    // A different view renders fresh.
    let third = session
        .request(Scene::orbit(&volume, 46.0, 10.0, TransferFunction::smoke()))
        .wait();
    assert!(!third.from_cache);

    let report = service.shutdown();
    assert_eq!(report.cache_hits, 1);
    assert_eq!(report.frames_rendered, 2);
    assert!((report.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
}

/// Interactive requests overtake queued batch work. Pop order is observed
/// through the cache: both jobs request the SAME scene, so whichever the
/// single worker renders first populates the cache and the other coalesces
/// onto it — the interactive frame must be the rendered one even though the
/// batch job was submitted first.
#[test]
fn interactive_requests_overtake_batch_work() {
    let service = RenderService::start(ServiceConfig {
        workers: 1,
        max_batch: 1, // isolate priority order from batch grouping
        cache_frames: 4,
        start_paused: true,
    });
    let spec = ClusterSpec::accelerator_cluster(1);
    let cfg = RenderConfig::test_size(16);
    let volume = Dataset::Skull.volume(8);
    let session = service.session(spec, volume.clone(), cfg);

    let scene = scene_for(&volume, 10.0);
    let batch_ticket = session.request_with_priority(scene.clone(), Priority::Batch);
    let interactive_ticket = session.request_with_priority(scene, Priority::Interactive);
    service.resume();

    let b = batch_ticket.wait();
    let i = interactive_ticket.wait();
    assert!(
        !i.from_cache,
        "the interactive job must have been popped (and rendered) first"
    );
    assert!(
        b.from_cache,
        "the earlier-submitted batch job must have coalesced onto the \
         interactive render"
    );
    assert_eq!(*b.image, *i.image);
    let report = service.shutdown();
    assert_eq!(report.frames_completed, 2);
    assert_eq!(report.frames_rendered, 1);
}

/// A session that outlives the service fails loudly and uniformly —
/// cached or not.
#[test]
#[should_panic(expected = "shut-down render service")]
fn submit_through_outliving_session_panics_after_shutdown() {
    let service = RenderService::start(ServiceConfig::default());
    let spec = ClusterSpec::accelerator_cluster(1);
    let cfg = RenderConfig::test_size(16);
    let volume = Dataset::Skull.volume(8);
    let session = service.session(spec, volume.clone(), cfg);
    // Render (and cache) a view, then shut the service down.
    session.request(scene_for(&volume, 0.0)).wait();
    service.shutdown();
    // Even the cached view must refuse: the service is gone.
    session.request(scene_for(&volume, 0.0));
}

/// Shutdown drains every queued job; all tickets resolve.
#[test]
fn shutdown_resolves_all_pending_tickets() {
    let service = RenderService::start(ServiceConfig {
        workers: 1,
        max_batch: 2,
        cache_frames: 4,
        start_paused: true, // jobs pile up before any worker runs
    });
    let spec = ClusterSpec::accelerator_cluster(1);
    let cfg = RenderConfig::test_size(16);
    let volume = Dataset::Skull.volume(8);
    let session = service.session(spec, volume.clone(), cfg);
    let tickets: Vec<_> = (0..5)
        .map(|i| session.request(scene_for(&volume, i as f32 * 20.0)))
        .collect();
    assert_eq!(service.queue_len(), 5);
    // Shutdown (queue close) drains even a paused queue.
    let report = service.shutdown();
    assert_eq!(report.frames_completed, 5);
    for t in tickets {
        let _ = t.wait(); // already resolved
    }
}

/// Direct submit (no session) with an explicit request.
#[test]
fn raw_submit_roundtrip() {
    let service = RenderService::start(ServiceConfig::default());
    let spec = ClusterSpec::accelerator_cluster(1);
    let cfg = RenderConfig::test_size(16);
    let volume = Dataset::Skull.volume(8);
    let scene = scene_for(&volume, 0.0);
    let frame = service
        .submit(SceneRequest {
            spec: spec.clone(),
            volume: volume.clone(),
            scene: scene.clone(),
            config: cfg.clone(),
            priority: Priority::Normal,
        })
        .wait();
    let direct = render(&spec, &volume, &scene, &cfg);
    assert_eq!(*frame.image, direct.image);
    assert_eq!(frame.report.job, direct.report.job);
}
