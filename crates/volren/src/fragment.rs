//! Ray fragments: the key–value pairs of the rendering MapReduce job.
//!
//! The key is the pixel index (`y·width + x`, §3.1.2); the value is the
//! partially composited color of one ray segment through one brick plus the
//! segment's parametric extent — homogeneous POD, exactly the paper's
//! emission restriction. Colors are premultiplied by alpha so compositing is
//! the associative *over* operator (what makes partial-ray compositing legal
//! at all). The exit depth exists so a combiner can prove two segments are
//! adjacent along the ray before merging them — the only safe way to combine
//! fragments.

use mgpu_mapreduce::WireValue;

/// One ray segment's contribution: premultiplied RGBA plus `[depth, exit)`,
/// the half-open parametric interval the segment covered.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Fragment {
    /// Premultiplied color: `[r·a, g·a, b·a, a]`.
    pub color: [f32; 4],
    /// Ray parameter at brick entry — the depth-sort key for compositing.
    pub depth: f32,
    /// Ray parameter at brick exit (half-open).
    pub exit: f32,
}

impl WireValue for Fragment {
    /// 4 color floats + entry + exit = 24 bytes on the wire (28 with the
    /// 4-byte pixel key; the paper's fragment is 24 including its key — ours
    /// carries the extra exit float to make combining provably safe).
    const WIRE_BYTES: usize = 24;
}

impl Fragment {
    pub fn is_empty(&self) -> bool {
        self.color[3] <= 0.0
    }

    /// Whether `next` starts exactly where `self` ends along the ray (within
    /// `tol`), i.e. no other brick's segment can lie between them.
    pub fn adjacent_before(&self, next: &Fragment, tol: f32) -> bool {
        (self.exit - next.depth).abs() <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_mapreduce::pair_wire_bytes;

    #[test]
    fn wire_size_is_28_with_key() {
        assert_eq!(pair_wire_bytes::<Fragment>(), 28);
    }

    #[test]
    fn default_is_empty() {
        assert!(Fragment::default().is_empty());
    }

    #[test]
    fn adjacency() {
        let a = Fragment {
            depth: 0.0,
            exit: 2.0,
            ..Default::default()
        };
        let b = Fragment {
            depth: 2.0,
            exit: 4.0,
            ..Default::default()
        };
        let c = Fragment {
            depth: 3.0,
            exit: 5.0,
            ..Default::default()
        };
        assert!(a.adjacent_before(&b, 1e-4));
        assert!(!a.adjacent_before(&c, 1e-4));
    }
}
