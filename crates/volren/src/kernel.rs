//! The ray-casting map kernel (§3.2), executed for real by the software GPU.
//!
//! Per thread: one pixel of the brick's sub-image. The ray is intersected
//! against the brick's bounding box; surviving rays march the brick at fixed
//! increments on a **global** sample grid (`t_k = (k + 0.5)·step`, identical
//! for every brick), sampling the 3-D texture trilinearly, classifying
//! through the 1-D transfer-function texture, accumulating front-to-back
//! with early ray termination. Threads with nothing to contribute emit the
//! sentinel placeholder — the paper's "every GPU thread must emit" rule.
//!
//! Two details make bricked rendering bit-compatible with unbricked:
//! * the global `t` grid means sample *positions* do not depend on how the
//!   volume was bricked;
//! * half-open segment ownership (`t ∈ [t_enter, t_exit)`) means each sample
//!   belongs to exactly one brick along the ray.
//!
//! The kernel implements **both** execution APIs of `mgpu-gpu`:
//! [`Kernel`] is the retained scalar reference path (one virtual call per
//! pixel, used by the equivalence oracles), and [`BlockKernel`] is the
//! production path — per block it resolves the texture/LUT samplers once,
//! hoists the camera-eye slab invariants ([`SlabTest`]) and the per-row
//! image-plane coordinate, marches with the interior fast-path samplers,
//! classifies alpha before color, tallies once per ray, and interleaves
//! each row's rays two at a time to hide the sample chain's latency. Every
//! value a ray computes is produced by the same float operations in the
//! same order as the scalar path, so the `(Key, Fragment)` output and
//! launch statistics are bit-identical (pinned by
//! `tests/batched_equivalence.rs`).

use mgpu_gpu::{BlockCtx, BlockKernel, BlockOut, Kernel, Texture1D, Texture3D, ThreadCtx};
use mgpu_mapreduce::{Key, SENTINEL_KEY};

use crate::camera::Camera;
use crate::composite::accumulate;
use crate::fragment::Fragment;
use crate::math::Vec3;
use crate::ray::SlabTest;

/// Alpha below which a fragment is considered empty and discarded.
pub const EMPTY_ALPHA: f32 = 1e-5;

/// The ray-cast kernel for one brick.
pub struct RayCastKernel<'a> {
    pub camera: &'a Camera,
    pub lut: &'a Texture1D,
    pub texture: &'a Texture3D,
    /// World coordinate of the stored array's origin (core origin − ghost).
    pub store_origin: Vec3,
    /// Brick core box in world (voxel) coordinates.
    pub core_lo: Vec3,
    pub core_hi: Vec3,
    /// Full image dimensions.
    pub image: (u32, u32),
    /// Sub-image (footprint) origin this launch covers.
    pub offset: (u32, u32),
    /// Step along the ray in voxel units (the global sample grid).
    pub step: f32,
    /// Early-ray-termination opacity threshold (≥ 1.0 disables).
    pub early_term: f32,
}

impl RayCastKernel<'_> {
    /// Whether opacity correction is needed (`step ≠ 1`).
    #[inline]
    fn needs_correction(&self) -> bool {
        (self.step - 1.0).abs() > 1e-6
    }
}

impl Kernel for RayCastKernel<'_> {
    type Out = (Key, Fragment);

    fn thread(&self, ctx: &mut ThreadCtx) -> (Key, Fragment) {
        let px = self.offset.0 + ctx.global.0;
        let py = self.offset.1 + ctx.global.1;
        // Padding threads outside the image emit placeholders.
        if px >= self.image.0 || py >= self.image.1 {
            return (SENTINEL_KEY, Fragment::default());
        }

        let ray = self.camera.ray(px, py, self.image.0, self.image.1);
        let Some((t0, t1)) = ray.intersect_aabb(self.core_lo, self.core_hi) else {
            return (SENTINEL_KEY, Fragment::default());
        };

        // First global sample index with t_k = (k + 0.5)·step ≥ t0.
        let mut k = (t0 / self.step - 0.5).ceil().max(0.0) as u64;
        let correct = self.needs_correction();
        let mut acc = [0f32; 4];
        let mut samples = 0u64;
        loop {
            let t = (k as f32 + 0.5) * self.step;
            if t >= t1 {
                break; // half-open ownership: t1 belongs to the next brick
            }
            let p = ray.at(t);
            let v = self.texture.sample(
                p.x - self.store_origin.x,
                p.y - self.store_origin.y,
                p.z - self.store_origin.z,
            );
            samples += 1;
            let rgba = self.lut.sample(v);
            let mut a = rgba[3];
            if correct && a > 0.0 {
                a = 1.0 - (1.0 - a).powf(self.step);
            }
            if a > 0.0 {
                accumulate(&mut acc, [rgba[0], rgba[1], rgba[2]], a);
                if acc[3] >= self.early_term {
                    break;
                }
            }
            k += 1;
        }
        // One tally per ray (not per sample): same LaunchStats totals, far
        // fewer context touches on the hot path.
        ctx.tally(samples);

        if acc[3] <= EMPTY_ALPHA {
            // "Ray fragments with no contributions are discarded."
            return (SENTINEL_KEY, Fragment::default());
        }
        let key = py * self.image.0 + px;
        (
            key,
            Fragment {
                color: acc,
                depth: t0,
                exit: t1,
            },
        )
    }
}

/// The batched production path: same rays, same samples, same float ops as
/// the scalar impl above — restructured so per-launch state (samplers, slab
/// invariants, opacity-correction flag) is resolved once per block and the
/// per-row image-plane coordinate once per row. Rays are marched **two at a
/// time**: a single march is one serial dependency chain (position → fetch →
/// classify → blend), so interleaving two independent chains hides most of
/// each other's latency — the one-core analog of the warp-level latency
/// hiding the paper gets from the hardware scheduler. Interleaving reorders
/// nothing within a ray, so output stays bit-identical. Emits straight into
/// the launch's SoA buffers; sample counts are tallied once per ray.
impl BlockKernel for RayCastKernel<'_> {
    type Key = Key;
    type Value = Fragment;

    fn run_block(&self, ctx: &BlockCtx, out: BlockOut<'_, Key, Fragment>) {
        let mctx = MarchCtx {
            smp: self.texture.sampler(),
            lut: self.lut.sampler(),
            step: self.step,
            correct: self.needs_correction(),
            early_term: self.early_term,
            ox: self.store_origin.x,
            oy: self.store_origin.y,
            oz: self.store_origin.z,
        };
        let slabs = SlabTest::new(self.camera.eye, self.core_lo, self.core_hi);
        let (w, h) = self.image;
        let step = self.step;
        let mut rowq: Vec<March> = Vec::with_capacity(ctx.dim.0 as usize);

        for ty in 0..ctx.dim.1 {
            let row = ctx.index(0, ty);
            let py = self.offset.1 + ctx.block.1 * ctx.dim.1 + ty;
            if py >= h {
                // Whole row is padding below the image.
                for tx in 0..ctx.dim.0 {
                    out.keys[row + tx as usize] = SENTINEL_KEY;
                }
                continue;
            }
            let v = self.camera.ndc_v(py, h);

            // Pass 1: intersect the row's rays, queue the survivors.
            rowq.clear();
            for tx in 0..ctx.dim.0 {
                let i = row + tx as usize;
                out.keys[i] = SENTINEL_KEY;
                let px = self.offset.0 + ctx.block.0 * ctx.dim.0 + tx;
                if px >= w {
                    continue; // padding column; value/samples stay default
                }
                let ray = self.camera.ray_from_ndc(self.camera.ndc_u(px, w, h), v);
                let Some((t0, t1)) = slabs.intersect(ray.dir) else {
                    continue;
                };
                rowq.push(March {
                    lane: i,
                    key: py * w + px,
                    ray,
                    t0,
                    t1,
                    k: (t0 / step - 0.5).ceil().max(0.0) as u64,
                    acc: [0.0; 4],
                    samples: 0,
                    live: true,
                });
            }

            // Pass 2: march the survivors, paired for latency hiding.
            let mut pairs = rowq.chunks_exact_mut(2);
            for pair in &mut pairs {
                let (a, b) = pair.split_at_mut(1);
                mctx.march_pair(&mut a[0], &mut b[0]);
            }
            if let [last] = pairs.into_remainder() {
                mctx.march_solo(last);
            }

            for m in &rowq {
                out.samples[m.lane] = m.samples;
                if m.acc[3] > EMPTY_ALPHA {
                    out.keys[m.lane] = m.key;
                    out.values[m.lane] = Fragment {
                        color: m.acc,
                        depth: m.t0,
                        exit: m.t1,
                    };
                }
            }
        }
    }
}

/// One ray in flight through the batched march (`run_block` pass 2).
struct March {
    lane: usize,
    key: Key,
    ray: crate::ray::Ray,
    t0: f32,
    t1: f32,
    /// Next global sample index.
    k: u64,
    acc: [f32; 4],
    samples: u64,
    /// False once early ray termination fires (bounds are checked per step).
    live: bool,
}

/// Per-launch march invariants: the resolved samplers plus the scalar config
/// the inner loop reads every sample.
struct MarchCtx<'a> {
    smp: mgpu_gpu::Sampler3D<'a>,
    lut: mgpu_gpu::Sampler1D<'a>,
    step: f32,
    correct: bool,
    early_term: f32,
    ox: f32,
    oy: f32,
    oz: f32,
}

impl MarchCtx<'_> {
    /// Take one sample at parametric distance `t` (caller has checked
    /// `t < t1`): exactly the per-sample float ops of the scalar
    /// [`Kernel::thread`] path, in the same order. The color lerps only run
    /// for samples that contribute — identical expressions when they do.
    #[inline(always)]
    fn sample_step(&self, m: &mut March, t: f32) {
        let p = m.ray.at(t);
        let val = self.smp.sample(p.x - self.ox, p.y - self.oy, p.z - self.oz);
        m.samples += 1;
        let (c0, c1, f) = self.lut.taps(val);
        let mut a = c0[3] + (c1[3] - c0[3]) * f;
        if self.correct && a > 0.0 {
            a = 1.0 - (1.0 - a).powf(self.step);
        }
        if a > 0.0 {
            let rgb = [
                c0[0] + (c1[0] - c0[0]) * f,
                c0[1] + (c1[1] - c0[1]) * f,
                c0[2] + (c1[2] - c0[2]) * f,
            ];
            accumulate(&mut m.acc, rgb, a);
            if m.acc[3] >= self.early_term {
                m.live = false;
                return;
            }
        }
        m.k += 1;
    }

    /// March one ray to its exit (or early termination).
    #[inline(always)]
    fn march_solo(&self, m: &mut March) {
        while m.live {
            let t = (m.k as f32 + 0.5) * self.step;
            if t >= m.t1 {
                break; // half-open ownership: t1 belongs to the next brick
            }
            self.sample_step(m, t);
        }
    }

    /// March two rays interleaved while both are active — two independent
    /// dependency chains in flight — then finish the survivor alone. Each
    /// ray still takes its own samples in its own order, so the result is
    /// bit-identical to two solo marches.
    #[inline(always)]
    fn march_pair(&self, a: &mut March, b: &mut March) {
        while a.live && b.live {
            let ta = (a.k as f32 + 0.5) * self.step;
            let tb = (b.k as f32 + 0.5) * self.step;
            if ta >= a.t1 || tb >= b.t1 {
                break;
            }
            self.sample_step(a, ta);
            self.sample_step(b, tb);
        }
        self.march_solo(a);
        self.march_solo(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Scene;
    use crate::math::vec3;
    use crate::transfer::TransferFunction;
    use mgpu_gpu::{launch, LaunchConfig};
    use mgpu_voldata::Dataset;

    /// A uniform 8³ texture (with ghost padding) of constant density.
    fn flat_texture(value: f32) -> Texture3D {
        Texture3D::new([10, 10, 10], vec![value; 1000])
    }

    fn test_scene() -> Scene {
        let v = Dataset::Skull.volume(8);
        Scene::orbit(&v, 30.0, 20.0, TransferFunction::grayscale())
    }

    fn run_kernel(kernel: &RayCastKernel<'_>, w: u32, h: u32) -> Vec<(Key, Fragment)> {
        let out = launch(kernel, LaunchConfig::cover(w, h), 1);
        out.outputs
    }

    #[test]
    fn every_thread_emits_and_misses_are_sentinels() {
        let tex = flat_texture(0.5);
        let lut = TransferFunction::grayscale().bake();
        let scene = test_scene();
        let kernel = RayCastKernel {
            camera: &scene.camera,
            lut: &lut,
            texture: &tex,
            store_origin: vec3(-1.0, -1.0, -1.0),
            core_lo: Vec3::ZERO,
            core_hi: vec3(8.0, 8.0, 8.0),
            image: (64, 64),
            offset: (0, 0),
            step: 1.0,
            early_term: 1.1,
        };
        let outs = run_kernel(&kernel, 64, 64);
        assert_eq!(outs.len(), 64 * 64);
        let hits = outs.iter().filter(|(k, _)| *k != SENTINEL_KEY).count();
        let sentinels = outs.len() - hits;
        assert!(hits > 0, "no ray hit the box");
        assert!(sentinels > 0, "some padding/missing rays expected");
        for (k, f) in &outs {
            if *k != SENTINEL_KEY {
                assert!(*k < 64 * 64);
                assert!(f.color[3] > 0.0);
                assert!(f.depth >= 0.0);
            }
        }
    }

    #[test]
    fn denser_volume_yields_higher_alpha() {
        let lut = TransferFunction::grayscale().bake();
        let scene = test_scene();
        let mut alphas = Vec::new();
        for density in [0.2f32, 0.6] {
            let tex = flat_texture(density);
            let kernel = RayCastKernel {
                camera: &scene.camera,
                lut: &lut,
                texture: &tex,
                store_origin: vec3(-1.0, -1.0, -1.0),
                core_lo: Vec3::ZERO,
                core_hi: vec3(8.0, 8.0, 8.0),
                image: (32, 32),
                offset: (0, 0),
                step: 1.0,
                early_term: 1.1,
            };
            let outs = run_kernel(&kernel, 32, 32);
            let best = outs
                .iter()
                .filter(|(k, _)| *k != SENTINEL_KEY)
                .map(|(_, f)| f.color[3])
                .fold(0f32, f32::max);
            alphas.push(best);
        }
        assert!(alphas[1] > alphas[0]);
    }

    #[test]
    fn early_termination_reduces_samples() {
        let tex = flat_texture(1.0); // fully opaque everywhere
        let lut = TransferFunction::grayscale().bake();
        let scene = test_scene();
        let base = RayCastKernel {
            camera: &scene.camera,
            lut: &lut,
            texture: &tex,
            store_origin: vec3(-1.0, -1.0, -1.0),
            core_lo: Vec3::ZERO,
            core_hi: vec3(8.0, 8.0, 8.0),
            image: (32, 32),
            offset: (0, 0),
            step: 1.0,
            early_term: 1.1,
        };
        let no_et = launch(&base, LaunchConfig::cover(32, 32), 1).stats;
        let with_et = RayCastKernel {
            early_term: 0.95,
            ..base
        };
        let et = launch(&with_et, LaunchConfig::cover(32, 32), 1).stats;
        assert!(
            et.total_samples < no_et.total_samples,
            "ET must cut samples: {} vs {}",
            et.total_samples,
            no_et.total_samples
        );
    }

    #[test]
    fn offset_launch_covers_sub_image() {
        let tex = flat_texture(0.5);
        let lut = TransferFunction::grayscale().bake();
        let scene = test_scene();
        let kernel = RayCastKernel {
            camera: &scene.camera,
            lut: &lut,
            texture: &tex,
            store_origin: vec3(-1.0, -1.0, -1.0),
            core_lo: Vec3::ZERO,
            core_hi: vec3(8.0, 8.0, 8.0),
            image: (64, 64),
            offset: (16, 16),
            step: 1.0,
            early_term: 1.1,
        };
        let outs = run_kernel(&kernel, 32, 32);
        for (k, _) in outs.iter().filter(|(k, _)| *k != SENTINEL_KEY) {
            let x = k % 64;
            let y = k / 64;
            assert!((16..48).contains(&x), "x {x} outside sub-image");
            assert!((16..48).contains(&y), "y {y} outside sub-image");
        }
    }

    #[test]
    fn empty_volume_emits_only_sentinels() {
        let tex = flat_texture(0.0);
        let lut = TransferFunction::bone().bake(); // air is transparent
        let scene = test_scene();
        let kernel = RayCastKernel {
            camera: &scene.camera,
            lut: &lut,
            texture: &tex,
            store_origin: vec3(-1.0, -1.0, -1.0),
            core_lo: Vec3::ZERO,
            core_hi: vec3(8.0, 8.0, 8.0),
            image: (32, 32),
            offset: (0, 0),
            step: 1.0,
            early_term: 1.1,
        };
        let outs = run_kernel(&kernel, 32, 32);
        assert!(outs.iter().all(|(k, _)| *k == SENTINEL_KEY));
    }
}
