//! The ray-casting map kernel (§3.2), executed for real by the software GPU.
//!
//! Per thread: one pixel of the brick's sub-image. The ray is intersected
//! against the brick's bounding box; surviving rays march the brick at fixed
//! increments on a **global** sample grid (`t_k = (k + 0.5)·step`, identical
//! for every brick), sampling the 3-D texture trilinearly, classifying
//! through the 1-D transfer-function texture, accumulating front-to-back
//! with early ray termination. Threads with nothing to contribute emit the
//! sentinel placeholder — the paper's "every GPU thread must emit" rule.
//!
//! Two details make bricked rendering bit-compatible with unbricked:
//! * the global `t` grid means sample *positions* do not depend on how the
//!   volume was bricked;
//! * half-open segment ownership (`t ∈ [t_enter, t_exit)`) means each sample
//!   belongs to exactly one brick along the ray.

use mgpu_gpu::{Kernel, Texture1D, Texture3D, ThreadCtx};
use mgpu_mapreduce::{Key, SENTINEL_KEY};

use crate::camera::Camera;
use crate::composite::accumulate;
use crate::fragment::Fragment;
use crate::math::Vec3;

/// Alpha below which a fragment is considered empty and discarded.
pub const EMPTY_ALPHA: f32 = 1e-5;

/// The ray-cast kernel for one brick.
pub struct RayCastKernel<'a> {
    pub camera: &'a Camera,
    pub lut: &'a Texture1D,
    pub texture: &'a Texture3D,
    /// World coordinate of the stored array's origin (core origin − ghost).
    pub store_origin: Vec3,
    /// Brick core box in world (voxel) coordinates.
    pub core_lo: Vec3,
    pub core_hi: Vec3,
    /// Full image dimensions.
    pub image: (u32, u32),
    /// Sub-image (footprint) origin this launch covers.
    pub offset: (u32, u32),
    /// Step along the ray in voxel units (the global sample grid).
    pub step: f32,
    /// Early-ray-termination opacity threshold (≥ 1.0 disables).
    pub early_term: f32,
}

impl RayCastKernel<'_> {
    /// Whether opacity correction is needed (`step ≠ 1`).
    #[inline]
    fn needs_correction(&self) -> bool {
        (self.step - 1.0).abs() > 1e-6
    }
}

impl Kernel for RayCastKernel<'_> {
    type Out = (Key, Fragment);

    fn thread(&self, ctx: &mut ThreadCtx) -> (Key, Fragment) {
        let px = self.offset.0 + ctx.global.0;
        let py = self.offset.1 + ctx.global.1;
        // Padding threads outside the image emit placeholders.
        if px >= self.image.0 || py >= self.image.1 {
            return (SENTINEL_KEY, Fragment::default());
        }

        let ray = self.camera.ray(px, py, self.image.0, self.image.1);
        let Some((t0, t1)) = ray.intersect_aabb(self.core_lo, self.core_hi) else {
            return (SENTINEL_KEY, Fragment::default());
        };

        // First global sample index with t_k = (k + 0.5)·step ≥ t0.
        let mut k = (t0 / self.step - 0.5).ceil().max(0.0) as u64;
        let correct = self.needs_correction();
        let mut acc = [0f32; 4];
        loop {
            let t = (k as f32 + 0.5) * self.step;
            if t >= t1 {
                break; // half-open ownership: t1 belongs to the next brick
            }
            let p = ray.at(t);
            let v = self.texture.sample(
                p.x - self.store_origin.x,
                p.y - self.store_origin.y,
                p.z - self.store_origin.z,
            );
            ctx.tally(1);
            let rgba = self.lut.sample(v);
            let mut a = rgba[3];
            if correct && a > 0.0 {
                a = 1.0 - (1.0 - a).powf(self.step);
            }
            if a > 0.0 {
                accumulate(&mut acc, [rgba[0], rgba[1], rgba[2]], a);
                if acc[3] >= self.early_term {
                    break;
                }
            }
            k += 1;
        }

        if acc[3] <= EMPTY_ALPHA {
            // "Ray fragments with no contributions are discarded."
            return (SENTINEL_KEY, Fragment::default());
        }
        let key = py * self.image.0 + px;
        (
            key,
            Fragment {
                color: acc,
                depth: t0,
                exit: t1,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Scene;
    use crate::math::vec3;
    use crate::transfer::TransferFunction;
    use mgpu_gpu::{launch, LaunchConfig};
    use mgpu_voldata::Dataset;

    /// A uniform 8³ texture (with ghost padding) of constant density.
    fn flat_texture(value: f32) -> Texture3D {
        Texture3D::new([10, 10, 10], vec![value; 1000])
    }

    fn test_scene() -> Scene {
        let v = Dataset::Skull.volume(8);
        Scene::orbit(&v, 30.0, 20.0, TransferFunction::grayscale())
    }

    fn run_kernel(kernel: &RayCastKernel<'_>, w: u32, h: u32) -> Vec<(Key, Fragment)> {
        let out = launch(kernel, LaunchConfig::cover(w, h), 1);
        out.outputs
    }

    #[test]
    fn every_thread_emits_and_misses_are_sentinels() {
        let tex = flat_texture(0.5);
        let lut = TransferFunction::grayscale().bake();
        let scene = test_scene();
        let kernel = RayCastKernel {
            camera: &scene.camera,
            lut: &lut,
            texture: &tex,
            store_origin: vec3(-1.0, -1.0, -1.0),
            core_lo: Vec3::ZERO,
            core_hi: vec3(8.0, 8.0, 8.0),
            image: (64, 64),
            offset: (0, 0),
            step: 1.0,
            early_term: 1.1,
        };
        let outs = run_kernel(&kernel, 64, 64);
        assert_eq!(outs.len(), 64 * 64);
        let hits = outs.iter().filter(|(k, _)| *k != SENTINEL_KEY).count();
        let sentinels = outs.len() - hits;
        assert!(hits > 0, "no ray hit the box");
        assert!(sentinels > 0, "some padding/missing rays expected");
        for (k, f) in &outs {
            if *k != SENTINEL_KEY {
                assert!(*k < 64 * 64);
                assert!(f.color[3] > 0.0);
                assert!(f.depth >= 0.0);
            }
        }
    }

    #[test]
    fn denser_volume_yields_higher_alpha() {
        let lut = TransferFunction::grayscale().bake();
        let scene = test_scene();
        let mut alphas = Vec::new();
        for density in [0.2f32, 0.6] {
            let tex = flat_texture(density);
            let kernel = RayCastKernel {
                camera: &scene.camera,
                lut: &lut,
                texture: &tex,
                store_origin: vec3(-1.0, -1.0, -1.0),
                core_lo: Vec3::ZERO,
                core_hi: vec3(8.0, 8.0, 8.0),
                image: (32, 32),
                offset: (0, 0),
                step: 1.0,
                early_term: 1.1,
            };
            let outs = run_kernel(&kernel, 32, 32);
            let best = outs
                .iter()
                .filter(|(k, _)| *k != SENTINEL_KEY)
                .map(|(_, f)| f.color[3])
                .fold(0f32, f32::max);
            alphas.push(best);
        }
        assert!(alphas[1] > alphas[0]);
    }

    #[test]
    fn early_termination_reduces_samples() {
        let tex = flat_texture(1.0); // fully opaque everywhere
        let lut = TransferFunction::grayscale().bake();
        let scene = test_scene();
        let base = RayCastKernel {
            camera: &scene.camera,
            lut: &lut,
            texture: &tex,
            store_origin: vec3(-1.0, -1.0, -1.0),
            core_lo: Vec3::ZERO,
            core_hi: vec3(8.0, 8.0, 8.0),
            image: (32, 32),
            offset: (0, 0),
            step: 1.0,
            early_term: 1.1,
        };
        let no_et = launch(&base, LaunchConfig::cover(32, 32), 1).stats;
        let with_et = RayCastKernel {
            early_term: 0.95,
            ..base
        };
        let et = launch(&with_et, LaunchConfig::cover(32, 32), 1).stats;
        assert!(
            et.total_samples < no_et.total_samples,
            "ET must cut samples: {} vs {}",
            et.total_samples,
            no_et.total_samples
        );
    }

    #[test]
    fn offset_launch_covers_sub_image() {
        let tex = flat_texture(0.5);
        let lut = TransferFunction::grayscale().bake();
        let scene = test_scene();
        let kernel = RayCastKernel {
            camera: &scene.camera,
            lut: &lut,
            texture: &tex,
            store_origin: vec3(-1.0, -1.0, -1.0),
            core_lo: Vec3::ZERO,
            core_hi: vec3(8.0, 8.0, 8.0),
            image: (64, 64),
            offset: (16, 16),
            step: 1.0,
            early_term: 1.1,
        };
        let outs = run_kernel(&kernel, 32, 32);
        for (k, _) in outs.iter().filter(|(k, _)| *k != SENTINEL_KEY) {
            let x = k % 64;
            let y = k / 64;
            assert!((16..48).contains(&x), "x {x} outside sub-image");
            assert!((16..48).contains(&y), "y {y} outside sub-image");
        }
    }

    #[test]
    fn empty_volume_emits_only_sentinels() {
        let tex = flat_texture(0.0);
        let lut = TransferFunction::bone().bake(); // air is transparent
        let scene = test_scene();
        let kernel = RayCastKernel {
            camera: &scene.camera,
            lut: &lut,
            texture: &tex,
            store_origin: vec3(-1.0, -1.0, -1.0),
            core_lo: Vec3::ZERO,
            core_hi: vec3(8.0, 8.0, 8.0),
            image: (32, 32),
            offset: (0, 0),
            step: 1.0,
            early_term: 1.1,
        };
        let outs = run_kernel(&kernel, 32, 32);
        assert!(outs.iter().all(|(k, _)| *k == SENTINEL_KEY));
    }
}
