//! Front-to-back compositing with the *over* operator.
//!
//! Everything rests on one algebraic fact: with premultiplied colors, *over*
//! is associative. A ray can therefore be cut into per-brick segments, each
//! segment composited independently (the map phase), and the segments folded
//! in depth order later (the reduce phase) — the result equals compositing
//! the whole ray front to back. `proptest` checks exactly this invariant.

use crate::fragment::Fragment;

/// `front over back` for premultiplied RGBA.
#[inline]
pub fn over(front: [f32; 4], back: [f32; 4]) -> [f32; 4] {
    let t = 1.0 - front[3];
    [
        front[0] + back[0] * t,
        front[1] + back[1] * t,
        front[2] + back[2] * t,
        front[3] + back[3] * t,
    ]
}

/// Accumulate one sample during front-to-back ray marching:
/// `acc ← acc over sample` where the sample has straight alpha `a` and
/// color `rgb`.
#[inline]
pub fn accumulate(acc: &mut [f32; 4], rgb: [f32; 3], a: f32) {
    let t = (1.0 - acc[3]) * a;
    acc[0] += rgb[0] * t;
    acc[1] += rgb[1] * t;
    acc[2] += rgb[2] * t;
    acc[3] += t;
}

/// Composite fragments already sorted by ascending depth, then blend the
/// (straight-alpha) background behind them. Returns straight-alpha RGBA.
pub fn composite_sorted(fragments: &[Fragment], background: [f32; 4]) -> [f32; 4] {
    let mut acc = [0f32; 4];
    for f in fragments {
        acc = over(acc, f.color);
        if acc[3] >= 0.9999 {
            break;
        }
    }
    // Background is straight alpha; premultiply, lay it behind, un-premultiply.
    let bg = [
        background[0] * background[3],
        background[1] * background[3],
        background[2] * background[3],
        background[3],
    ];
    let out = over(acc, bg);
    if out[3] > 1e-6 {
        [out[0], out[1], out[2], out[3]]
    } else {
        [0.0, 0.0, 0.0, 0.0]
    }
}

/// Sort fragments by ascending depth (total order on f32, deterministic for
/// ties via stable sort) and composite. This is the reduce-side "all ray
/// fragments for a given pixel are ascending-depth sorted, composited, and
/// blended against the background color" (§3.2).
pub fn composite_unsorted(fragments: &mut [Fragment], background: [f32; 4]) -> [f32; 4] {
    fragments.sort_by(|a, b| a.depth.total_cmp(&b.depth));
    composite_sorted(fragments, background)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(color: [f32; 4], depth: f32) -> Fragment {
        Fragment {
            color,
            depth,
            exit: depth + 1.0,
        }
    }

    #[test]
    fn opaque_front_hides_back() {
        let f = [0.2, 0.4, 0.6, 1.0];
        let b = [0.9, 0.9, 0.9, 1.0];
        assert_eq!(over(f, b), f);
    }

    #[test]
    fn transparent_front_passes_back() {
        let b = [0.3, 0.2, 0.1, 0.8];
        assert_eq!(over([0.0; 4], b), b);
    }

    #[test]
    fn over_is_associative() {
        let a = [0.08, 0.1, 0.02, 0.2];
        let b = [0.3, 0.05, 0.1, 0.5];
        let c = [0.1, 0.6, 0.2, 0.7];
        let left = over(over(a, b), c);
        let right = over(a, over(b, c));
        for i in 0..4 {
            assert!((left[i] - right[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn accumulate_matches_over() {
        // accumulate(acc, rgb, a) must equal acc over premultiplied(rgb, a).
        let mut acc = [0.1, 0.2, 0.05, 0.3];
        let via_over = over(acc, [0.4 * 0.5, 0.6 * 0.5, 0.8 * 0.5, 0.5]);
        accumulate(&mut acc, [0.4, 0.6, 0.8], 0.5);
        for i in 0..4 {
            assert!((acc[i] - via_over[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn unsorted_equals_sorted() {
        let f1 = frag([0.2, 0.0, 0.0, 0.4], 1.0);
        let f2 = frag([0.0, 0.3, 0.0, 0.5], 2.0);
        let f3 = frag([0.0, 0.0, 0.4, 0.6], 3.0);
        let bg = [0.1, 0.1, 0.1, 1.0];
        let sorted = composite_sorted(&[f1, f2, f3], bg);
        let mut shuffled = [f3, f1, f2];
        let got = composite_unsorted(&mut shuffled, bg);
        for i in 0..4 {
            assert!((sorted[i] - got[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_fragments_show_background() {
        let bg = [0.25, 0.5, 0.75, 1.0];
        let out = composite_sorted(&[], bg);
        for i in 0..4 {
            assert!((out[i] - bg[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn saturated_alpha_short_circuits_identically() {
        let opaque = frag([0.5, 0.5, 0.5, 1.0], 0.5);
        let behind = frag([9.0, 9.0, 9.0, 1.0], 1.0); // absurd color, must not leak
        let out = composite_sorted(&[opaque, behind], [0.0; 4]);
        assert!((out[0] - 0.5).abs() < 1e-6);
    }
}
