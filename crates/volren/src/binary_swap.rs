//! Binary-swap compositing — the pluggable alternative of §6.1.
//!
//! "Swap compositing can be implemented by changing the partitioning on each
//! node. Every node would consume all generated ray fragments to create its
//! partial image. The reduction phase would then be changed to perform swap
//! compositing."
//!
//! Functionally, *over*'s associativity guarantees the same pixels as
//! direct-send, so the renderer reuses the direct-send job's reduced output;
//! what changes is the **communication/compute schedule**, modeled here:
//!
//! 1. Map: unchanged (bricks → kernels → fragment readback).
//! 2. Each GPU sorts and composites its own fragments into a partial image.
//! 3. `log2(G)` synchronized rounds: each GPU exchanges half of its current
//!    image region with its partner (`rank XOR 2^k`) and composites what it
//!    received — region halves every round, so round `k` moves
//!    `W·H/2^(k+1)` dense pixels per GPU.
//! 4. Final gather/stitch is excluded from timings, as in the paper.
//!
//! Against direct-send this trades per-message overhead (few, large, dense
//! messages) for synchronization (rounds are barriers) and for sending
//! *pixels* rather than only surviving fragments — which is why the paper
//! prefers direct-send at these scales.

use mgpu_cluster::{route, ClusterSpec, GpuId, ResourceMap, Route};
use mgpu_mapreduce::{CostBook, JobRecord, TraceOptions};
use mgpu_sim::{account, simulate, Activity, RunAccounting, SimDuration, TaskId, Trace};

/// Bytes per exchanged pixel (premultiplied RGBA f32).
const PIXEL_BYTES: u64 = 16;

/// Build and replay the binary-swap schedule for a completed map phase.
///
/// `image_pixels` is the dense image size (binary swap exchanges image
/// regions, not sparse fragments). GPUs must be a power of two — the classic
/// binary-swap restriction (the 2-3 swap generalization is future work here,
/// as it was in 2010).
pub fn account_binary_swap(
    record: &JobRecord,
    spec: &ClusterSpec,
    opts: &TraceOptions,
    image_pixels: u64,
) -> RunAccounting {
    let g = record.mappers.len() as u32;
    assert!(
        g.is_power_of_two(),
        "binary swap requires a power-of-two GPU count, got {g}"
    );
    let book = CostBook::from_cluster(spec);

    let mut tr = Trace::new();
    let rm = ResourceMap::build(spec, &mut tr);

    // Phase 1+2: map chains and the local composite per GPU.
    let mut ready: Vec<TaskId> = Vec::with_capacity(g as usize);
    for (m, mapper) in record.mappers.iter().enumerate() {
        let gpu = GpuId(m as u32);
        let pcie_r = rm.pcie_r(gpu);
        let gpu_r = rm.gpu_r(gpu);
        let core_r = rm.core_r(gpu);
        let disk_r = rm.disk_r(spec, gpu);

        let mut prev_disk: Option<TaskId> = None;
        let mut prev_gpu_op: Option<TaskId> = None;
        let mut last_d2h: Option<TaskId> = None;
        for chunk in &mapper.chunks {
            let disk_task = (chunk.disk_bytes > 0).then(|| {
                let t = tr.comm_task(
                    Activity::DiskRead,
                    disk_r,
                    book.disk.time(chunk.disk_bytes),
                    SimDuration::ZERO,
                    chunk.disk_bytes,
                    prev_disk.into_iter().collect(),
                );
                prev_disk = Some(t);
                t
            });
            let mut h2d_deps: Vec<TaskId> = disk_task.into_iter().collect();
            if !opts.async_upload {
                h2d_deps.extend(prev_gpu_op);
            }
            let h2d = tr.comm_task(
                Activity::HostToDevice,
                pcie_r,
                book.device.h2d_time(chunk.device_bytes),
                SimDuration::ZERO,
                chunk.device_bytes,
                h2d_deps,
            );
            let kernel = tr.task(
                Activity::Kernel,
                gpu_r,
                book.device.kernel.time(&chunk.launch),
                vec![h2d],
            );
            let d2h = tr.comm_task(
                Activity::DeviceToHost,
                pcie_r,
                book.device.d2h_time(chunk.emission_bytes),
                SimDuration::ZERO,
                chunk.emission_bytes,
                vec![kernel],
            );
            prev_gpu_op = Some(d2h);
            last_d2h = Some(d2h);
        }

        // Local composite of this GPU's fragments into its partial image.
        let kept: u64 = mapper.chunks.iter().map(|c| c.kept).sum();
        let groups = kept.min(image_pixels);
        let sort = tr.task(
            Activity::SortCpu,
            core_r,
            book.cpu.sort_time(kept),
            last_d2h.into_iter().collect(),
        );
        let composite = tr.task(
            Activity::ReduceCpu,
            core_r,
            book.cpu.reduce_time(kept, groups),
            vec![sort],
        );
        ready.push(composite);
    }

    // Phase 3: log2(G) swap rounds.
    let rounds = g.trailing_zeros();
    for k in 0..rounds {
        let mut next: Vec<TaskId> = Vec::with_capacity(g as usize);
        let pixels_moved = image_pixels >> (k + 1);
        let bytes = pixels_moved.max(1) * PIXEL_BYTES;
        // First compute all send tasks of this round…
        let mut sends: Vec<TaskId> = Vec::with_capacity(g as usize);
        for r in 0..g {
            let partner = r ^ (1 << k);
            let gpu = GpuId(r);
            let dst = GpuId(partner);
            let send = match route(spec, gpu, dst) {
                Route::SameProcess => unreachable!("partner is never self"),
                Route::IntraNode => tr.comm_task(
                    Activity::LocalCopy,
                    rm.core_r(gpu),
                    spec.network.intra_node_time(bytes),
                    SimDuration::ZERO,
                    bytes,
                    vec![ready[r as usize]],
                ),
                Route::InterNode => {
                    let s = tr.comm_task(
                        Activity::NetSend,
                        rm.nic_out_r(spec, gpu),
                        spec.network.send_time(bytes),
                        spec.network.wire_latency(),
                        bytes,
                        vec![ready[r as usize]],
                    );
                    tr.comm_task(
                        Activity::NetRecv,
                        rm.nic_in_r(spec, dst),
                        spec.network.recv_time(bytes),
                        SimDuration::ZERO,
                        bytes,
                        vec![s],
                    )
                }
            };
            sends.push(send);
        }
        // …then every GPU merges what its partner sent.
        for r in 0..g {
            let partner = r ^ (1 << k);
            let gpu = GpuId(r);
            let merge = tr.task(
                Activity::ReduceCpu,
                rm.core_r(gpu),
                book.cpu.reduce_time(pixels_moved, pixels_moved),
                vec![ready[r as usize], sends[partner as usize]],
            );
            next.push(merge);
        }
        ready = next;
    }

    let schedule = simulate(&tr);
    account(&tr, &schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_gpu::LaunchStats;
    use mgpu_mapreduce::{ChunkRecord, MapperRecord, ReducerRecord};

    fn record(gpus: usize) -> JobRecord {
        let mut rec = JobRecord::default();
        for m in 0..gpus {
            rec.mappers.push(MapperRecord {
                chunks: vec![ChunkRecord {
                    chunk_id: m,
                    disk_bytes: 0,
                    device_bytes: 1 << 20,
                    launch: LaunchStats {
                        threads: 4096,
                        blocks: 16,
                        warps: 128,
                        total_samples: 1_000_000,
                        simt_samples: 1_200_000,
                    },
                    emitted: 4096,
                    kept: 2000,
                    emission_bytes: 4096 * 28,
                }],
                sends: Vec::new(),
                init_bytes: 4096,
            });
            rec.reducers.push(ReducerRecord::default());
        }
        rec
    }

    #[test]
    fn produces_complete_breakdown() {
        let spec = ClusterSpec::accelerator_cluster(8);
        let acc = account_binary_swap(&record(8), &spec, &TraceOptions::default(), 64 * 64);
        assert!(!acc.breakdown.map.is_zero());
        assert!(!acc.breakdown.reduce.is_zero());
        assert_eq!(acc.breakdown.total(), acc.makespan);
    }

    #[test]
    fn round_count_scales_logarithmically() {
        let spec2 = ClusterSpec::accelerator_cluster(2);
        let spec16 = ClusterSpec::accelerator_cluster(16);
        let a2 = account_binary_swap(&record(2), &spec2, &TraceOptions::default(), 256 * 256);
        let a16 = account_binary_swap(&record(16), &spec16, &TraceOptions::default(), 256 * 256);
        // 2 GPUs: 1 round, all intra-node. 16 GPUs: 4 rounds, some inter-node.
        assert_eq!(a2.totals(Activity::NetSend).tasks, 0);
        assert!(a16.totals(Activity::NetSend).tasks > 0);
        let merges2 = a2.totals(Activity::ReduceCpu).tasks;
        let merges16 = a16.totals(Activity::ReduceCpu).tasks;
        assert_eq!(merges2, 2 + 2); // local composite + 1 round × 2 GPUs
        assert_eq!(merges16, 16 + 4 * 16);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        let spec = ClusterSpec::accelerator_cluster(6);
        account_binary_swap(&record(6), &spec, &TraceOptions::default(), 64 * 64);
    }

    #[test]
    fn bytes_halve_each_round() {
        let spec = ClusterSpec::accelerator_cluster(4);
        let acc = account_binary_swap(&record(4), &spec, &TraceOptions::default(), 1 << 16);
        // All traffic is intra-node for 4 GPUs; round 0 moves 2^15 pixels per
        // GPU, round 1 moves 2^14: total = 4·(2^15+2^14)·16 B.
        let total = acc.totals(Activity::LocalCopy).bytes;
        assert_eq!(total, 4 * ((1 << 15) + (1 << 14)) * 16);
    }
}
