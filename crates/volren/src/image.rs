//! RGBA float images and PPM output.

use std::io::{self, Write};
use std::path::Path;

/// An RGBA image with `f32` channels in `[0,1]` (straight, not premultiplied).
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: u32,
    height: u32,
    pixels: Vec<[f32; 4]>,
}

impl Image {
    pub fn new(width: u32, height: u32) -> Image {
        Image {
            width,
            height,
            pixels: vec![[0.0; 4]; (width * height) as usize],
        }
    }

    pub fn filled(width: u32, height: u32, color: [f32; 4]) -> Image {
        Image {
            width,
            height,
            pixels: vec![color; (width * height) as usize],
        }
    }

    /// Rebuild an image from its raw pixel rows (x-fastest, the layout
    /// [`Image::pixels`] exposes) — the wire-decoding path. Panics when the
    /// pixel count does not match `width × height`.
    pub fn from_pixels(width: u32, height: u32, pixels: Vec<[f32; 4]>) -> Image {
        assert_eq!(
            pixels.len(),
            (width * height) as usize,
            "pixel count must match {width}x{height}"
        );
        Image {
            width,
            height,
            pixels,
        }
    }

    pub fn width(&self) -> u32 {
        self.width
    }

    pub fn height(&self) -> u32 {
        self.height
    }

    pub fn pixel_count(&self) -> usize {
        self.pixels.len()
    }

    #[inline]
    pub fn get(&self, x: u32, y: u32) -> [f32; 4] {
        self.pixels[(y * self.width + x) as usize]
    }

    #[inline]
    pub fn set(&mut self, x: u32, y: u32, c: [f32; 4]) {
        self.pixels[(y * self.width + x) as usize] = c;
    }

    /// Linear pixel access by key (`y·width + x`), the renderer's key space.
    #[inline]
    pub fn set_linear(&mut self, key: u32, c: [f32; 4]) {
        self.pixels[key as usize] = c;
    }

    pub fn pixels(&self) -> &[[f32; 4]] {
        &self.pixels
    }

    /// Largest absolute channel difference against another image.
    pub fn max_abs_diff(&self, other: &Image) -> f32 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let mut m = 0f32;
        for (a, b) in self.pixels.iter().zip(&other.pixels) {
            for c in 0..4 {
                m = m.max((a[c] - b[c]).abs());
            }
        }
        m
    }

    /// Mean absolute channel difference against another image.
    pub fn mean_abs_diff(&self, other: &Image) -> f32 {
        assert_eq!(self.pixels.len(), other.pixels.len());
        if self.pixels.is_empty() {
            return 0.0;
        }
        let mut sum = 0f64;
        for (a, b) in self.pixels.iter().zip(&other.pixels) {
            for c in 0..4 {
                sum += (a[c] - b[c]).abs() as f64;
            }
        }
        (sum / (self.pixels.len() * 4) as f64) as f32
    }

    /// Fraction of pixels with alpha above `threshold` (how much of the
    /// screen the volume covers).
    pub fn coverage(&self, threshold: f32) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        let n = self.pixels.iter().filter(|p| p[3] > threshold).count();
        n as f64 / self.pixels.len() as f64
    }

    /// Write as binary PPM (P6), compositing alpha over black is assumed to
    /// have already happened (we write RGB directly).
    pub fn write_ppm(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "P6\n{} {}\n255", self.width, self.height)?;
        let mut buf = Vec::with_capacity(self.pixels.len() * 3);
        for p in &self.pixels {
            for c in &p[..3] {
                buf.push((c.clamp(0.0, 1.0) * 255.0 + 0.5) as u8);
            }
        }
        f.write_all(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut img = Image::new(4, 3);
        img.set(2, 1, [0.1, 0.2, 0.3, 1.0]);
        assert_eq!(img.get(2, 1), [0.1, 0.2, 0.3, 1.0]);
        img.set_linear(6, [0.5; 4]); // (2,1) again: key = 1*4+2
        assert_eq!(img.get(2, 1), [0.5; 4]);
    }

    #[test]
    fn diffs() {
        let a = Image::filled(2, 2, [0.5; 4]);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set(0, 0, [0.6, 0.5, 0.5, 0.5]);
        assert!((a.max_abs_diff(&b) - 0.1).abs() < 1e-6);
        assert!((a.mean_abs_diff(&b) - 0.1 / 16.0).abs() < 1e-6);
    }

    #[test]
    fn coverage_counts_alpha() {
        let mut img = Image::new(2, 2);
        img.set(0, 0, [0.0, 0.0, 0.0, 1.0]);
        assert!((img.coverage(0.5) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn ppm_write() {
        let img = Image::filled(3, 2, [1.0, 0.0, 0.5, 1.0]);
        let path = std::env::temp_dir().join(format!("mgpu_img_{}.ppm", std::process::id()));
        img.write_ppm(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(bytes.len(), 11 + 18);
        std::fs::remove_file(&path).ok();
    }
}
