//! The high-level renderer: brick the volume, run the MapReduce job for
//! real, replay its trace on the modeled cluster, stitch the image.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use mgpu_cluster::ClusterSpec;
use mgpu_mapreduce::{build_trace, run_job, CostBook, JobConfig, JobStats};
use mgpu_obs::names;
use mgpu_obs::{trace, Histogram};
use mgpu_sim::{account, simulate, PhaseBreakdown, RunAccounting, SimDuration};
use mgpu_voldata::{BrickGrid, BrickPolicy, BrickStore, StoreSnapshot, Volume};

use crate::brick::{RenderBrick, Staging};
use crate::camera::Scene;
use crate::combine::AdjacentFragmentCombiner;
use crate::config::{Compositor, RenderConfig, Residency};
use crate::image::Image;
use crate::mapper::VolumeMapper;
use crate::reduce::CompositeReducer;
use crate::stitch::stitch;

/// Modeled host memory per node (the Accelerator Cluster's 8 GB), used by
/// the automatic residency decision.
const HOST_BYTES_PER_NODE: u64 = 8 << 30;

/// Handles into the process-global [`mgpu_obs`] registry for the renderer's
/// stage timings, resolved once so the per-frame cost is a clock read and an
/// atomic increment. Wall-clock here, not DES time: these measure what the
/// host actually spends bricking, ray-casting and compositing, feeding the
/// `STATS` v2 snapshot and the `obs_top` dashboard. (The *modeled* cluster
/// times stay in [`RenderReport::accounting`].)
struct RendererObs {
    staging_ns: Arc<Histogram>,
    plan_prepare_ns: Arc<Histogram>,
    kernel_ns: Arc<Histogram>,
    composite_ns: Arc<Histogram>,
}

fn obs() -> &'static RendererObs {
    static OBS: OnceLock<RendererObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = mgpu_obs::global();
        RendererObs {
            staging_ns: reg.histogram(names::VOLREN_STAGING_NS),
            plan_prepare_ns: reg.histogram(names::VOLREN_PLAN_PREPARE_NS),
            kernel_ns: reg.histogram(names::VOLREN_KERNEL_NS),
            composite_ns: reg.histogram(names::VOLREN_COMPOSITE_NS),
        }
    })
}

/// Everything measured about one rendered frame.
#[derive(Debug, Clone)]
pub struct RenderReport {
    pub volume_label: String,
    pub volume_voxels: u64,
    pub gpus: u32,
    pub bricks: usize,
    pub grid_counts: [u32; 3],
    /// Bricked volume fits aggregate VRAM (the paper's in-core condition).
    pub in_core: bool,
    /// Bricks were staged from disk (out-of-core w.r.t. host RAM).
    pub from_disk: bool,
    pub accounting: RunAccounting,
    pub job: JobStats,
    pub store: StoreSnapshot,
}

impl RenderReport {
    /// Virtual wall-clock of the frame (the paper's "runtime").
    pub fn runtime(&self) -> SimDuration {
        self.accounting.makespan
    }

    pub fn breakdown(&self) -> &PhaseBreakdown {
        &self.accounting.breakdown
    }

    /// Frames per second (Figure 4, left).
    pub fn fps(&self) -> f64 {
        let s = self.runtime().as_secs_f64();
        if s > 0.0 {
            1.0 / s
        } else {
            f64::INFINITY
        }
    }

    /// Voxels per second (Figure 4, right): volume voxels over runtime.
    pub fn vps(&self) -> f64 {
        let s = self.runtime().as_secs_f64();
        if s > 0.0 {
            self.volume_voxels as f64 / s
        } else {
            f64::INFINITY
        }
    }
}

/// A rendered frame plus its report.
#[derive(Debug)]
pub struct RenderOutcome {
    pub image: Image,
    pub report: RenderReport,
}

/// Per-(cluster, volume, config) render state that is scene-independent and
/// can be shared across frames: the brick grid, the staging decision, the
/// brick store and the chunk handles. [`render`] builds one per call; the
/// render service shares one across a *batch* — and, through its plan
/// cache, across consecutive batches — so same-volume frames stage bricks
/// once for the plan's lifetime instead of once per frame.
///
/// A plan is immutable apart from the brick store's interior-mutable cache
/// and atomic statistics, so it is `Send + Sync`: an `Arc<FramePlan>` may be
/// rendered from any thread (or several at once). Per-frame staging
/// attribution goes through [`StoreSnapshot::since`] deltas; when two
/// threads render against the same plan *concurrently*, each frame's
/// `store` delta may attribute the other's stagings to itself — the pixels
/// are unaffected, only the staging statistics interleave.
pub struct FramePlan {
    pub grid: BrickGrid,
    pub staging: Staging,
    /// Bricked volume fits aggregate VRAM (the paper's in-core condition).
    pub in_core: bool,
    /// Bricks are staged from disk (out-of-core w.r.t. host RAM).
    pub from_disk: bool,
    store: Arc<BrickStore>,
    bricks: Vec<RenderBrick>,
    /// Identity of the (spec, cfg) this plan was prepared for; guards
    /// [`render_planned`] against mismatched reuse.
    fingerprint: String,
}

fn plan_fingerprint(spec: &ClusterSpec, cfg: &RenderConfig) -> String {
    format!("{spec:?}|{cfg:?}")
}

impl FramePlan {
    /// Brick `volume` for `spec` under `cfg` and build the shared store.
    ///
    /// Only the scene-independent parts of `cfg` matter for the bricking
    /// (`bricks_per_gpu`, `max_brick_voxels`, `residency`,
    /// `host_cache_bytes`), but [`render_planned`] insists on the exact same
    /// `spec` and `cfg` — a mismatch would silently break its bit-identical
    /// guarantee.
    pub fn prepare(spec: &ClusterSpec, volume: &Volume, cfg: &RenderConfig) -> FramePlan {
        let prepare_start = Instant::now();
        let gpus = spec.gpus;

        // Brick the volume: ~2 bricks per GPU, capped so a brick (with
        // ghost) fits comfortably in VRAM.
        let vram_voxel_cap = spec.device.vram_bytes / 4 / 4; // ≤ quarter of VRAM
        let policy = BrickPolicy {
            min_bricks: cfg.bricks_per_gpu.max(1) * gpus,
            max_brick_voxels: cfg.max_brick_voxels.min(vram_voxel_cap),
        };
        let grid = BrickGrid::subdivide(volume.dims(), &policy);

        // The paper's restriction #1: every map task must fit in GPU memory.
        let ghost = 1u32;
        let max_brick_bytes: u64 = grid
            .bricks()
            .map(|b| {
                (0..3)
                    .map(|a| b.size[a] as u64 + 2 * ghost as u64)
                    .product::<u64>()
                    * 4
            })
            .max()
            .unwrap_or(0);
        assert!(
            max_brick_bytes <= spec.device.vram_bytes,
            "brick of {max_brick_bytes} bytes cannot fit device VRAM"
        );

        let in_core = volume.meta.bytes() <= spec.total_vram_bytes();
        let from_disk = match cfg.residency {
            Residency::HostResident => false,
            Residency::Disk => true,
            Residency::Auto => volume.meta.bytes() > HOST_BYTES_PER_NODE * spec.nodes() as u64,
        };
        let staging = if from_disk {
            Staging::Disk
        } else {
            Staging::HostResident
        };

        // Build the shared store and chunk handles — the staging setup this
        // plan amortizes across every frame rendered against it.
        let stage_start = Instant::now();
        let store = Arc::new(BrickStore::new(
            volume.clone(),
            grid.clone(),
            ghost,
            cfg.host_cache_bytes,
        ));
        let bricks: Vec<RenderBrick> = (0..grid.brick_count())
            .map(|i| RenderBrick::new(Arc::clone(&store), i, staging))
            .collect();
        obs().staging_ns.record_duration(stage_start.elapsed());
        trace::record_current("stage", stage_start);

        obs()
            .plan_prepare_ns
            .record_duration(prepare_start.elapsed());
        FramePlan {
            grid,
            staging,
            in_core,
            from_disk,
            store,
            bricks,
            fingerprint: plan_fingerprint(spec, cfg),
        }
    }

    /// Does this plan match the given spec/config (field-for-field)?
    pub fn matches(&self, spec: &ClusterSpec, cfg: &RenderConfig) -> bool {
        self.fingerprint == plan_fingerprint(spec, cfg)
    }

    /// The shared brick store (cache counters accumulate across frames).
    pub fn store(&self) -> &Arc<BrickStore> {
        &self.store
    }

    pub fn brick_count(&self) -> usize {
        self.bricks.len()
    }

    /// The volume this plan bricks.
    pub fn volume(&self) -> &Volume {
        self.store.volume()
    }
}

/// Render one frame of `volume` on the modeled `spec` cluster.
///
/// The computation (every texture sample, every blend) runs for real on host
/// threads; the report's times come from the DES replay of the recorded
/// trace against the cluster's hardware models.
pub fn render(
    spec: &ClusterSpec,
    volume: &Volume,
    scene: &Scene,
    cfg: &RenderConfig,
) -> RenderOutcome {
    let plan = FramePlan::prepare(spec, volume, cfg);
    render_planned(spec, &plan, scene, cfg)
}

/// Render one frame against a prebuilt [`FramePlan`].
///
/// Pixels depend only on `(volume, scene, cfg, spec.gpus)` — a frame
/// rendered through a shared plan is bit-identical to a direct [`render`]
/// call. The report's `store` counters are the *delta* this frame caused on
/// the shared store, so a warm store shows up as fewer misses (stagings).
///
/// Panics if `spec`/`cfg` differ from the ones the plan was prepared with:
/// the plan's bricking was sized and VRAM-checked for exactly that pair, and
/// a silent mismatch would break the bit-identical guarantee.
pub fn render_planned(
    spec: &ClusterSpec,
    plan: &FramePlan,
    scene: &Scene,
    cfg: &RenderConfig,
) -> RenderOutcome {
    assert!(
        plan.matches(spec, cfg),
        "render_planned requires the exact ClusterSpec and RenderConfig the \
         FramePlan was prepared with"
    );
    let gpus = spec.gpus;
    let (width, height) = cfg.image;
    assert!(width > 0 && height > 0, "degenerate image");
    let volume = plan.store.volume();
    let store_before = plan.store.snapshot();

    let mapper = VolumeMapper::new(
        scene.clone(),
        cfg.image,
        cfg.step_voxels,
        cfg.early_term,
        cfg.resolved_kernel_parallelism(gpus),
    );
    let reducer = CompositeReducer {
        background: scene.background,
    };
    let partitioner = cfg.partition.build(width);
    let combiner = AdjacentFragmentCombiner::default();
    let job_cfg = JobConfig {
        batch_bytes: cfg.batch_bytes,
        assignment: cfg.assignment,
        ..JobConfig::new(gpus, width * height)
    };

    // Kernel phase: the real map/sort/reduce execution (every texture
    // sample and blend), staged brick reads included.
    let kernel_start = Instant::now();
    let output = run_job(
        &plan.bricks,
        &mapper,
        &reducer,
        partitioner.as_ref(),
        cfg.combiner
            .then_some(&combiner as &dyn mgpu_mapreduce::Combiner<_>),
        spec,
        &job_cfg,
    );
    obs().kernel_ns.record_duration(kernel_start.elapsed());
    trace::record_current("kernel", kernel_start);
    debug_assert!(output.stats.conserved(), "fragment conservation violated");

    // Composite phase: DES accounting of the modeled compositing plus the
    // actual stitch into the final image.
    let composite_start = Instant::now();
    let accounting = match cfg.compositor {
        Compositor::DirectSend => {
            let book = CostBook::from_cluster(spec);
            let trace = build_trace(&output.record, spec, &book, &cfg.trace);
            let schedule = simulate(&trace);
            account(&trace, &schedule)
        }
        Compositor::BinarySwap => crate::binary_swap::account_binary_swap(
            &output.record,
            spec,
            &cfg.trace,
            width as u64 * height as u64,
        ),
    };

    let image = stitch(&output.keys, &output.outs, width, height, scene.background);
    obs()
        .composite_ns
        .record_duration(composite_start.elapsed());
    trace::record_current("composite", composite_start);

    let report = RenderReport {
        volume_label: volume.meta.label(),
        volume_voxels: volume.meta.voxel_count(),
        gpus,
        bricks: plan.grid.brick_count(),
        grid_counts: plan.grid.counts,
        in_core: plan.in_core,
        from_disk: plan.from_disk,
        accounting,
        job: output.stats,
        store: plan.store.snapshot().since(&store_before),
    };

    RenderOutcome { image, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::TransferFunction;
    use mgpu_voldata::Dataset;

    fn quick_render(gpus: u32, size: u32, image: u32) -> RenderOutcome {
        let volume = Dataset::Skull.volume(size);
        let spec = ClusterSpec::accelerator_cluster(gpus);
        let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
        let cfg = RenderConfig::test_size(image);
        render(&spec, &volume, &scene, &cfg)
    }

    #[test]
    fn renders_something_visible() {
        let out = quick_render(2, 32, 64);
        assert!(out.image.coverage(0.05) > 0.05, "skull should be visible");
        assert!(out.report.runtime().nanos() > 0);
        assert!(out.report.job.conserved());
        assert_eq!(out.report.gpus, 2);
        assert!(out.report.bricks >= 4);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = quick_render(4, 32, 64);
        let b = quick_render(4, 32, 64);
        assert_eq!(a.image, b.image);
        assert_eq!(a.report.runtime(), b.report.runtime());
        assert_eq!(a.report.job, b.report.job);
    }

    #[test]
    fn gpu_count_does_not_change_pixels_without_early_termination() {
        // With ET disabled the sample set is bricking-invariant, so any GPU
        // count must reproduce the same image up to f32 rounding.
        let volume = Dataset::Skull.volume(32);
        let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
        let mut cfg = RenderConfig::test_size(64);
        cfg.early_term = 1.1;
        let render_g = |g: u32| {
            let spec = ClusterSpec::accelerator_cluster(g);
            render(&spec, &volume, &scene, &cfg).image
        };
        let one = render_g(1);
        let eight = render_g(8);
        let diff = one.max_abs_diff(&eight);
        assert!(diff < 1e-4, "bricked render must match: diff {diff}");
    }

    #[test]
    fn early_termination_error_is_bounded_by_threshold() {
        // ET truncates per brick, so brickings may differ — but never by
        // more than the transmittance left when termination fires (1 − τ).
        let one = quick_render(1, 32, 64);
        let eight = quick_render(8, 32, 64);
        let diff = one.image.max_abs_diff(&eight.image);
        let bound = 1.0 - RenderConfig::default().early_term + 0.01;
        assert!(diff <= bound, "ET divergence {diff} exceeds bound {bound}");
    }

    #[test]
    fn report_metrics_sane() {
        let out = quick_render(2, 32, 64);
        let r = &out.report;
        assert!(r.fps() > 0.0);
        assert!(r.vps() > 0.0);
        assert_eq!(r.volume_voxels, 32 * 32 * 32);
        assert_eq!(r.breakdown().total(), r.accounting.makespan);
        assert!(r.in_core);
        assert!(!r.from_disk);
    }

    #[test]
    fn shared_plan_matches_direct_render_and_stages_once() {
        let volume = Dataset::Skull.volume(32);
        let spec = ClusterSpec::accelerator_cluster(2);
        let cfg = RenderConfig::test_size(64);
        let plan = FramePlan::prepare(&spec, &volume, &cfg);
        let scenes: Vec<Scene> = [10.0f32, 40.0, 70.0]
            .iter()
            .map(|az| Scene::orbit(&volume, *az, 20.0, TransferFunction::bone()))
            .collect();
        let mut planned_misses = 0;
        for scene in &scenes {
            let planned = render_planned(&spec, &plan, scene, &cfg);
            let direct = render(&spec, &volume, scene, &cfg);
            assert_eq!(planned.image, direct.image, "plan must not change pixels");
            planned_misses += planned.report.store.misses;
        }
        // The shared store materializes each brick once across all frames;
        // direct renders would pay `bricks` misses per frame.
        assert_eq!(planned_misses as usize, plan.brick_count());
    }

    #[test]
    #[should_panic(expected = "FramePlan was prepared with")]
    fn mismatched_plan_is_rejected() {
        let volume = Dataset::Skull.volume(16);
        let cfg = RenderConfig::test_size(32);
        let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
        let plan = FramePlan::prepare(&ClusterSpec::accelerator_cluster(2), &volume, &cfg);
        render_planned(&ClusterSpec::accelerator_cluster(8), &plan, &scene, &cfg);
    }

    #[test]
    fn forced_disk_staging_slows_the_frame() {
        let volume = Dataset::Skull.volume(32);
        let spec = ClusterSpec::accelerator_cluster(2);
        let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
        let mut cfg = RenderConfig::test_size(64);
        let resident = render(&spec, &volume, &scene, &cfg);
        cfg.residency = Residency::Disk;
        let disk = render(&spec, &volume, &scene, &cfg);
        assert_eq!(resident.image, disk.image, "staging must not change pixels");
        assert!(disk.report.runtime() > resident.report.runtime());
        assert!(disk.report.from_disk);
    }
}
