//! The high-level renderer: brick the volume, run the MapReduce job for
//! real, replay its trace on the modeled cluster, stitch the image.

use std::sync::Arc;

use mgpu_cluster::ClusterSpec;
use mgpu_mapreduce::{build_trace, run_job, CostBook, JobConfig, JobStats, Key};
use mgpu_sim::{account, simulate, PhaseBreakdown, RunAccounting, SimDuration};
use mgpu_voldata::{BrickGrid, BrickPolicy, BrickStore, StoreSnapshot, Volume};

use crate::brick::{RenderBrick, Staging};
use crate::camera::Scene;
use crate::combine::AdjacentFragmentCombiner;
use crate::config::{Compositor, RenderConfig, Residency};
use crate::image::Image;
use crate::mapper::VolumeMapper;
use crate::reduce::CompositeReducer;
use crate::stitch::stitch;

/// Modeled host memory per node (the Accelerator Cluster's 8 GB), used by
/// the automatic residency decision.
const HOST_BYTES_PER_NODE: u64 = 8 << 30;

/// Everything measured about one rendered frame.
#[derive(Debug, Clone)]
pub struct RenderReport {
    pub volume_label: String,
    pub volume_voxels: u64,
    pub gpus: u32,
    pub bricks: usize,
    pub grid_counts: [u32; 3],
    /// Bricked volume fits aggregate VRAM (the paper's in-core condition).
    pub in_core: bool,
    /// Bricks were staged from disk (out-of-core w.r.t. host RAM).
    pub from_disk: bool,
    pub accounting: RunAccounting,
    pub job: JobStats,
    pub store: StoreSnapshot,
}

impl RenderReport {
    /// Virtual wall-clock of the frame (the paper's "runtime").
    pub fn runtime(&self) -> SimDuration {
        self.accounting.makespan
    }

    pub fn breakdown(&self) -> &PhaseBreakdown {
        &self.accounting.breakdown
    }

    /// Frames per second (Figure 4, left).
    pub fn fps(&self) -> f64 {
        let s = self.runtime().as_secs_f64();
        if s > 0.0 {
            1.0 / s
        } else {
            f64::INFINITY
        }
    }

    /// Voxels per second (Figure 4, right): volume voxels over runtime.
    pub fn vps(&self) -> f64 {
        let s = self.runtime().as_secs_f64();
        if s > 0.0 {
            self.volume_voxels as f64 / s
        } else {
            f64::INFINITY
        }
    }
}

/// A rendered frame plus its report.
#[derive(Debug)]
pub struct RenderOutcome {
    pub image: Image,
    pub report: RenderReport,
}

/// Render one frame of `volume` on the modeled `spec` cluster.
///
/// The computation (every texture sample, every blend) runs for real on host
/// threads; the report's times come from the DES replay of the recorded
/// trace against the cluster's hardware models.
pub fn render(
    spec: &ClusterSpec,
    volume: &Volume,
    scene: &Scene,
    cfg: &RenderConfig,
) -> RenderOutcome {
    let gpus = spec.gpus;
    let (width, height) = cfg.image;
    assert!(width > 0 && height > 0, "degenerate image");

    // Brick the volume: ~2 bricks per GPU, capped so a brick (with ghost)
    // fits comfortably in VRAM.
    let vram_voxel_cap = spec.device.vram_bytes / 4 / 4; // ≤ quarter of VRAM
    let policy = BrickPolicy {
        min_bricks: cfg.bricks_per_gpu.max(1) * gpus,
        max_brick_voxels: cfg.max_brick_voxels.min(vram_voxel_cap),
    };
    let grid = BrickGrid::subdivide(volume.dims(), &policy);

    // The paper's restriction #1: every map task must fit in GPU memory.
    let ghost = 1u32;
    let max_brick_bytes: u64 = grid
        .bricks()
        .map(|b| {
            (0..3)
                .map(|a| b.size[a] as u64 + 2 * ghost as u64)
                .product::<u64>()
                * 4
        })
        .max()
        .unwrap_or(0);
    assert!(
        max_brick_bytes <= spec.device.vram_bytes,
        "brick of {max_brick_bytes} bytes cannot fit device VRAM"
    );

    let in_core = volume.meta.bytes() <= spec.total_vram_bytes();
    let from_disk = match cfg.residency {
        Residency::HostResident => false,
        Residency::Disk => true,
        Residency::Auto => volume.meta.bytes() > HOST_BYTES_PER_NODE * spec.nodes() as u64,
    };
    let staging = if from_disk {
        Staging::Disk
    } else {
        Staging::HostResident
    };

    let store = Arc::new(BrickStore::new(
        volume.clone(),
        grid.clone(),
        ghost,
        cfg.host_cache_bytes,
    ));
    let bricks: Vec<RenderBrick> = (0..grid.brick_count())
        .map(|i| RenderBrick::new(Arc::clone(&store), i, staging))
        .collect();

    let mapper = VolumeMapper::new(
        scene.clone(),
        cfg.image,
        cfg.step_voxels,
        cfg.early_term,
        cfg.resolved_kernel_parallelism(gpus),
    );
    let reducer = CompositeReducer {
        background: scene.background,
    };
    let partitioner = cfg.partition.build(width);
    let combiner = AdjacentFragmentCombiner::default();
    let job_cfg = JobConfig {
        batch_bytes: cfg.batch_bytes,
        assignment: cfg.assignment,
        ..JobConfig::new(gpus, width * height)
    };

    let output = run_job(
        &bricks,
        &mapper,
        &reducer,
        partitioner.as_ref(),
        cfg.combiner
            .then_some(&combiner as &dyn mgpu_mapreduce::Combiner<_>),
        spec,
        &job_cfg,
    );
    debug_assert!(output.stats.conserved(), "fragment conservation violated");

    let accounting = match cfg.compositor {
        Compositor::DirectSend => {
            let book = CostBook::from_cluster(spec);
            let trace = build_trace(&output.record, spec, &book, &cfg.trace);
            let schedule = simulate(&trace);
            account(&trace, &schedule)
        }
        Compositor::BinarySwap => crate::binary_swap::account_binary_swap(
            &output.record,
            spec,
            &cfg.trace,
            width as u64 * height as u64,
        ),
    };

    let image = stitch(
        &output.groups as &[(Key, [f32; 4])],
        width,
        height,
        scene.background,
    );

    let report = RenderReport {
        volume_label: volume.meta.label(),
        volume_voxels: volume.meta.voxel_count(),
        gpus,
        bricks: grid.brick_count(),
        grid_counts: grid.counts,
        in_core,
        from_disk,
        accounting,
        job: output.stats,
        store: store.snapshot(),
    };

    RenderOutcome { image, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::TransferFunction;
    use mgpu_voldata::Dataset;

    fn quick_render(gpus: u32, size: u32, image: u32) -> RenderOutcome {
        let volume = Dataset::Skull.volume(size);
        let spec = ClusterSpec::accelerator_cluster(gpus);
        let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
        let cfg = RenderConfig::test_size(image);
        render(&spec, &volume, &scene, &cfg)
    }

    #[test]
    fn renders_something_visible() {
        let out = quick_render(2, 32, 64);
        assert!(out.image.coverage(0.05) > 0.05, "skull should be visible");
        assert!(out.report.runtime().nanos() > 0);
        assert!(out.report.job.conserved());
        assert_eq!(out.report.gpus, 2);
        assert!(out.report.bricks >= 4);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = quick_render(4, 32, 64);
        let b = quick_render(4, 32, 64);
        assert_eq!(a.image, b.image);
        assert_eq!(a.report.runtime(), b.report.runtime());
        assert_eq!(a.report.job, b.report.job);
    }

    #[test]
    fn gpu_count_does_not_change_pixels_without_early_termination() {
        // With ET disabled the sample set is bricking-invariant, so any GPU
        // count must reproduce the same image up to f32 rounding.
        let volume = Dataset::Skull.volume(32);
        let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
        let mut cfg = RenderConfig::test_size(64);
        cfg.early_term = 1.1;
        let render_g = |g: u32| {
            let spec = ClusterSpec::accelerator_cluster(g);
            render(&spec, &volume, &scene, &cfg).image
        };
        let one = render_g(1);
        let eight = render_g(8);
        let diff = one.max_abs_diff(&eight);
        assert!(diff < 1e-4, "bricked render must match: diff {diff}");
    }

    #[test]
    fn early_termination_error_is_bounded_by_threshold() {
        // ET truncates per brick, so brickings may differ — but never by
        // more than the transmittance left when termination fires (1 − τ).
        let one = quick_render(1, 32, 64);
        let eight = quick_render(8, 32, 64);
        let diff = one.image.max_abs_diff(&eight.image);
        let bound = 1.0 - RenderConfig::default().early_term + 0.01;
        assert!(
            diff as f32 <= bound,
            "ET divergence {diff} exceeds bound {bound}"
        );
    }

    #[test]
    fn report_metrics_sane() {
        let out = quick_render(2, 32, 64);
        let r = &out.report;
        assert!(r.fps() > 0.0);
        assert!(r.vps() > 0.0);
        assert_eq!(r.volume_voxels, 32 * 32 * 32);
        assert_eq!(r.breakdown().total(), r.accounting.makespan);
        assert!(r.in_core);
        assert!(!r.from_disk);
    }

    #[test]
    fn forced_disk_staging_slows_the_frame() {
        let volume = Dataset::Skull.volume(32);
        let spec = ClusterSpec::accelerator_cluster(2);
        let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
        let mut cfg = RenderConfig::test_size(64);
        let resident = render(&spec, &volume, &scene, &cfg);
        cfg.residency = Residency::Disk;
        let disk = render(&spec, &volume, &scene, &cfg);
        assert_eq!(resident.image, disk.image, "staging must not change pixels");
        assert!(disk.report.runtime() > resident.report.runtime());
        assert!(disk.report.from_disk);
    }
}
