//! Renderer configuration: every §3 design decision is a knob here, so the
//! ablation benches can flip them one at a time.

use mgpu_mapreduce::{
    Assignment, Checkerboard, Partitioner, RoundRobin, Striped, Tiled, TraceOptions,
};

/// Which partitioning strategy routes fragments to reducers (§3.1.1 — the
/// paper found per-pixel round-robin "empirically the most performant").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    RoundRobin,
    Striped { rows_per_stripe: u32 },
    Tiled { tile: u32 },
    Checkerboard { cell: u32 },
}

impl PartitionStrategy {
    /// Instantiate for a given image width.
    pub fn build(&self, image_width: u32) -> Box<dyn Partitioner> {
        match *self {
            PartitionStrategy::RoundRobin => Box::new(RoundRobin),
            PartitionStrategy::Striped { rows_per_stripe } => Box::new(Striped {
                width: image_width,
                rows_per_stripe,
            }),
            PartitionStrategy::Tiled { tile } => Box::new(Tiled {
                width: image_width,
                tile,
            }),
            PartitionStrategy::Checkerboard { cell } => Box::new(Checkerboard {
                width: image_width,
                cell,
            }),
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            PartitionStrategy::RoundRobin => "round-robin",
            PartitionStrategy::Striped { .. } => "striped",
            PartitionStrategy::Tiled { .. } => "tiled",
            PartitionStrategy::Checkerboard { .. } => "checkerboard",
        }
    }
}

/// Compositing scheme (§6: the paper chose direct-send over swap because it
/// overlaps communication with computation and fits MapReduce; §6.1 points
/// out swap is a pluggable alternative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compositor {
    DirectSend,
    BinarySwap,
}

/// Where brick data starts (§5 timings assume host residency; out-of-core
/// runs stream from disk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Resident when the bricked volume fits aggregate VRAM, disk otherwise.
    Auto,
    /// Force host-resident staging (no disk charges).
    HostResident,
    /// Force disk streaming (out-of-core path).
    Disk,
}

/// Full renderer configuration. `Default` reproduces the paper's evaluation
/// setup: 512² image, unit step, early termination, 2 bricks per GPU capped
/// at 256³ voxels, round-robin direct-send, no combiner, CPU reduce,
/// synchronous texture uploads.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderConfig {
    pub image: (u32, u32),
    /// Ray-march step in voxel units (global sample grid).
    pub step_voxels: f32,
    /// Early-ray-termination opacity threshold (≥ 1.0 disables).
    pub early_term: f32,
    /// Target bricks per GPU (the paper runs ~2).
    pub bricks_per_gpu: u32,
    /// VRAM-driven cap on brick size, in voxels.
    pub max_brick_voxels: u64,
    pub residency: Residency,
    /// Host-side brick cache budget (out-of-core working set), bytes.
    pub host_cache_bytes: u64,
    /// Fragment batch flush threshold, bytes.
    pub batch_bytes: usize,
    pub partition: PartitionStrategy,
    pub compositor: Compositor,
    /// Brick→GPU assignment policy (default: streaming round-robin).
    pub assignment: Assignment,
    /// Enable the (paper-rejected) combine stage.
    pub combiner: bool,
    /// DES options: async uploads, GPU reduce.
    pub trace: TraceOptions,
    /// Real host threads per kernel launch; 0 = auto.
    pub kernel_parallelism: usize,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig {
            image: (512, 512),
            step_voxels: 1.0,
            early_term: 0.98,
            bricks_per_gpu: 2,
            max_brick_voxels: 256 * 256 * 256,
            residency: Residency::Auto,
            host_cache_bytes: 2 << 30,
            batch_bytes: 16 << 10,
            partition: PartitionStrategy::RoundRobin,
            compositor: Compositor::DirectSend,
            assignment: Assignment::RoundRobin,
            combiner: false,
            trace: TraceOptions::default(),
            kernel_parallelism: 0,
        }
    }
}

impl RenderConfig {
    /// Smaller configuration for tests: tiny image, everything else default.
    pub fn test_size(image: u32) -> RenderConfig {
        RenderConfig {
            image: (image, image),
            ..RenderConfig::default()
        }
    }

    /// Resolve kernel parallelism: split available cores across GPUs.
    pub fn resolved_kernel_parallelism(&self, gpus: u32) -> usize {
        if self.kernel_parallelism > 0 {
            return self.kernel_parallelism;
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        (cores / (gpus as usize).min(cores)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = RenderConfig::default();
        assert_eq!(c.image, (512, 512));
        assert_eq!(c.partition, PartitionStrategy::RoundRobin);
        assert_eq!(c.compositor, Compositor::DirectSend);
        assert!(!c.combiner);
        assert!(!c.trace.reduce_on_gpu);
        assert!(!c.trace.async_upload);
    }

    #[test]
    fn partition_strategies_build() {
        for s in [
            PartitionStrategy::RoundRobin,
            PartitionStrategy::Striped {
                rows_per_stripe: 16,
            },
            PartitionStrategy::Tiled { tile: 32 },
            PartitionStrategy::Checkerboard { cell: 64 },
        ] {
            let p = s.build(512);
            assert!(p.reducer_of(511, 4) < 4);
        }
    }

    #[test]
    fn kernel_parallelism_resolution() {
        let mut c = RenderConfig {
            kernel_parallelism: 3,
            ..RenderConfig::default()
        };
        assert_eq!(c.resolved_kernel_parallelism(8), 3);
        c.kernel_parallelism = 0;
        assert!(c.resolved_kernel_parallelism(1) >= 1);
        assert!(c.resolved_kernel_parallelism(64) >= 1);
    }
}
