//! The rendering Mapper: wires [`RenderBrick`]s through the ray-cast kernel.

use std::sync::{Arc, OnceLock};

use mgpu_cluster::GpuId;
use mgpu_gpu::{launch_blocks, LaunchConfig, LaunchStats, Texture1D, Texture3D};
use mgpu_mapreduce::{GpuMapper, MapOutput};
use mgpu_obs::names;
use mgpu_obs::{Counter, Histogram};

use crate::brick::RenderBrick;
use crate::camera::Scene;
use crate::fragment::Fragment;
use crate::kernel::RayCastKernel;
use crate::math::vec3;

/// Kernel-level observability: how many blocks each launch dispatched and
/// the per-ray sample-count distribution (the quantity the paper's cost
/// model charges for). Registered once in the global registry so `obs_top`
/// and STATS v2 surface them alongside the renderer stage timings.
struct MapperObs {
    kernel_blocks: Arc<Counter>,
    samples_per_ray: Arc<Histogram>,
}

fn obs() -> &'static MapperObs {
    static OBS: OnceLock<MapperObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = mgpu_obs::global();
        MapperObs {
            kernel_blocks: reg.counter(names::VOLREN_KERNEL_BLOCKS),
            samples_per_ray: reg.histogram(names::VOLREN_SAMPLES_PER_RAY),
        }
    })
}

/// Maps bricks to ray fragments. One instance is shared by all mapper
/// threads (it is stateless per GPU beyond the scene constants, which is
/// what the paper's Mapper `initialize` uploads: view matrix + TF LUT).
pub struct VolumeMapper {
    scene: Scene,
    lut: Texture1D,
    image: (u32, u32),
    step: f32,
    early_term: f32,
    /// Real host threads per kernel launch (wall-clock only; no effect on
    /// results or simulated time).
    kernel_parallelism: usize,
}

impl VolumeMapper {
    pub fn new(
        scene: Scene,
        image: (u32, u32),
        step: f32,
        early_term: f32,
        kernel_parallelism: usize,
    ) -> VolumeMapper {
        assert!(step > 0.0, "step must be positive");
        let lut = scene.transfer.bake();
        VolumeMapper {
            scene,
            lut,
            image,
            step,
            early_term,
            kernel_parallelism: kernel_parallelism.max(1),
        }
    }

    pub fn image(&self) -> (u32, u32) {
        self.image
    }
}

impl GpuMapper<RenderBrick> for VolumeMapper {
    type Value = Fragment;

    fn init(&self, _gpu: GpuId) -> u64 {
        // Static per-GPU state: the transfer-function LUT and the camera
        // constants (comfortably one 4 KiB page).
        self.scene.transfer.device_bytes() + 256
    }

    fn map_chunk(&self, _gpu: GpuId, brick: &RenderBrick) -> MapOutput<Fragment> {
        let Some((x0, y0, x1, y1)) =
            brick.footprint(&self.scene.camera, self.image.0, self.image.1)
        else {
            // Off-screen brick: nothing to launch, nothing emitted.
            return MapOutput {
                keys: Vec::new(),
                values: Vec::new(),
                stats: LaunchStats::default(),
            };
        };

        let data = brick.voxels();
        let texture = Texture3D::from_shared(data.store_dims, Arc::clone(&data.voxels));
        let (core_lo, core_hi) = brick.core_box();
        let kernel = RayCastKernel {
            camera: &self.scene.camera,
            lut: &self.lut,
            texture: &texture,
            store_origin: vec3(
                data.store_origin[0] as f32,
                data.store_origin[1] as f32,
                data.store_origin[2] as f32,
            ),
            core_lo,
            core_hi,
            image: self.image,
            offset: (x0, y0),
            step: self.step,
            early_term: self.early_term,
        };
        let out = launch_blocks(
            &kernel,
            LaunchConfig::cover(x1 - x0, y1 - y0),
            self.kernel_parallelism,
        );

        let o = obs();
        o.kernel_blocks.add(out.stats.blocks);
        for &n in &out.samples {
            if n > 0 {
                o.samples_per_ray.record(n);
            }
        }

        // SoA columns move straight into the MapReduce pipeline — no tuple
        // re-materialization between kernel and partitioner.
        MapOutput {
            keys: out.keys,
            values: out.values,
            stats: out.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brick::Staging;
    use crate::transfer::TransferFunction;
    use mgpu_mapreduce::{Chunk, SENTINEL_KEY};
    use mgpu_voldata::{BrickGrid, BrickPolicy, BrickStore, Dataset};
    use std::sync::Arc;

    fn setup(bricks: u32) -> (Vec<RenderBrick>, VolumeMapper) {
        let v = Dataset::Skull.volume(32);
        let grid = BrickGrid::subdivide(
            v.dims(),
            &BrickPolicy {
                min_bricks: bricks,
                max_brick_voxels: u64::MAX,
            },
        );
        let scene = Scene::orbit(&v, 30.0, 20.0, TransferFunction::bone());
        let store = Arc::new(BrickStore::new(v, grid, 1, u64::MAX));
        let n = store.grid().brick_count();
        let bricks = (0..n)
            .map(|i| RenderBrick::new(Arc::clone(&store), i, Staging::HostResident))
            .collect();
        let mapper = VolumeMapper::new(scene, (128, 128), 1.0, 0.98, 1);
        (bricks, mapper)
    }

    #[test]
    fn mapping_emits_fragments_with_valid_keys() {
        let (bricks, mapper) = setup(8);
        let mut total_kept = 0usize;
        for b in &bricks {
            let out = mapper.map_chunk(GpuId(0), b);
            assert_eq!(out.len() as u64, out.stats.threads);
            for (k, f) in out.iter() {
                if k != SENTINEL_KEY {
                    assert!(k < 128 * 128);
                    assert!(f.color[3] > 0.0);
                    total_kept += 1;
                }
            }
        }
        assert!(total_kept > 100, "the skull should produce fragments");
    }

    #[test]
    fn footprint_launch_is_smaller_than_full_image() {
        let (bricks, mapper) = setup(27);
        // At least one small brick launches fewer threads than 128².
        let smaller = bricks.iter().any(|b| {
            let out = mapper.map_chunk(GpuId(0), b);
            out.stats.threads > 0 && out.stats.threads < 128 * 128
        });
        assert!(smaller, "footprint clipping is not happening");
    }

    #[test]
    fn init_reports_static_bytes() {
        let (_, mapper) = setup(1);
        assert!(mapper.init(GpuId(0)) >= 4096);
    }

    #[test]
    fn chunk_trait_wiring() {
        let (bricks, _) = setup(8);
        assert_eq!(bricks[3].id(), 3);
        assert!(bricks[3].device_bytes() > 0);
    }
}
