//! Baselines: an independent reference ray caster (correctness oracle) and a
//! ParaView-class CPU-cluster model (the paper's footnote-1 comparison).

use mgpu_cluster::ClusterSpec;
use mgpu_gpu::{launch, LaunchConfig, LaunchStats, Texture3D};
use mgpu_sim::SimDuration;
use mgpu_voldata::Volume;

use crate::camera::Scene;
use crate::composite::composite_sorted;
use crate::config::RenderConfig;
use crate::image::Image;
use crate::kernel::RayCastKernel;
use crate::math::vec3;

/// Render the whole volume as a single unbricked texture on one simulated
/// GPU — the correctness oracle every multi-GPU configuration must match.
///
/// Materializes the entire volume (plus a ghost shell for identical border
/// filtering), so use at test scales.
pub fn reference_render(volume: &Volume, scene: &Scene, cfg: &RenderConfig) -> Image {
    let d = volume.dims();
    let ghost = 1i64;
    let store_dims = [d[0] as usize + 2, d[1] as usize + 2, d[2] as usize + 2];
    let voxels = volume.materialize_clamped([-ghost, -ghost, -ghost], store_dims);
    let texture = Texture3D::new(store_dims, voxels);
    let lut = scene.transfer.bake();
    let (width, height) = cfg.image;

    let kernel = RayCastKernel {
        camera: &scene.camera,
        lut: &lut,
        texture: &texture,
        store_origin: vec3(-1.0, -1.0, -1.0),
        core_lo: vec3(0.0, 0.0, 0.0),
        core_hi: vec3(d[0] as f32, d[1] as f32, d[2] as f32),
        image: cfg.image,
        offset: (0, 0),
        step: cfg.step_voxels,
        early_term: cfg.early_term,
    };
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let out = launch(&kernel, LaunchConfig::cover(width, height), parallelism);

    let mut img = Image::filled(width, height, composite_sorted(&[], scene.background));
    for (key, frag) in out.outputs {
        if key == mgpu_mapreduce::SENTINEL_KEY {
            continue;
        }
        let color = composite_sorted(std::slice::from_ref(&frag), scene.background);
        img.set_linear(key, color);
    }
    img
}

/// Kernel statistics of a reference render (for calibration reporting).
pub fn reference_stats(volume: &Volume, scene: &Scene, cfg: &RenderConfig) -> LaunchStats {
    let d = volume.dims();
    let store_dims = [d[0] as usize + 2, d[1] as usize + 2, d[2] as usize + 2];
    let voxels = volume.materialize_clamped([-1, -1, -1], store_dims);
    let texture = Texture3D::new(store_dims, voxels);
    let lut = scene.transfer.bake();
    let kernel = RayCastKernel {
        camera: &scene.camera,
        lut: &lut,
        texture: &texture,
        store_origin: vec3(-1.0, -1.0, -1.0),
        core_lo: vec3(0.0, 0.0, 0.0),
        core_hi: vec3(d[0] as f32, d[1] as f32, d[2] as f32),
        image: cfg.image,
        offset: (0, 0),
        step: cfg.step_voxels,
        early_term: cfg.early_term,
    };
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    launch(
        &kernel,
        LaunchConfig::cover(cfg.image.0, cfg.image.1),
        parallelism,
    )
    .stats
}

/// The paper's footnote-1 comparator: "Moreland et al. show that ParaView
/// can render 346M VPS using 512 processes on 256 nodes."
#[derive(Debug, Clone, Copy)]
pub struct ParaViewClassBaseline {
    pub processes: u32,
    /// Aggregate voxels/second at `processes` processes.
    pub total_vps: f64,
}

impl ParaViewClassBaseline {
    /// The configuration cited in the paper's footnote.
    pub fn moreland_cray_xt3() -> ParaViewClassBaseline {
        ParaViewClassBaseline {
            processes: 512,
            total_vps: 346.0e6,
        }
    }

    pub fn vps_per_process(&self) -> f64 {
        self.total_vps / self.processes as f64
    }

    /// Modeled frame time for a volume, assuming linear process scaling.
    pub fn frame_time(&self, voxels: u64, processes: u32) -> SimDuration {
        let vps = self.vps_per_process() * processes as f64;
        SimDuration::from_secs_f64(voxels as f64 / vps)
    }
}

/// Convenience: VPS of a cluster spec rendering `voxels` in `runtime`.
pub fn vps(voxels: u64, runtime: SimDuration) -> f64 {
    let s = runtime.as_secs_f64();
    if s > 0.0 {
        voxels as f64 / s
    } else {
        f64::INFINITY
    }
}

/// The footnote's headline check: does `spec` with a measured `runtime` beat
/// the ParaView baseline by the paper's ">2×" margin?
pub fn beats_paraview_2x(voxels: u64, runtime: SimDuration) -> bool {
    vps(voxels, runtime) > 2.0 * ParaViewClassBaseline::moreland_cray_xt3().total_vps
}

/// Unused import guard (ClusterSpec appears in doc examples).
const _: fn(&ClusterSpec) -> u32 = |s| s.gpus;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::TransferFunction;
    use mgpu_voldata::Dataset;

    #[test]
    fn reference_renders_visible_image() {
        let v = Dataset::Supernova.volume(32);
        let scene = Scene::orbit(&v, 20.0, 15.0, TransferFunction::fire());
        let cfg = RenderConfig::test_size(64);
        let img = reference_render(&v, &scene, &cfg);
        assert!(img.coverage(0.05) > 0.05);
    }

    #[test]
    fn paraview_numbers_match_footnote() {
        let pv = ParaViewClassBaseline::moreland_cray_xt3();
        assert_eq!(pv.processes, 512);
        assert!((pv.vps_per_process() - 675_781.25).abs() < 1.0);
        // A 1024³ volume at 512 processes: ~3.1 s.
        let t = pv.frame_time(1 << 30, 512).as_secs_f64();
        assert!((t - 3.103).abs() < 0.01, "{t}");
    }

    #[test]
    fn two_x_margin_check() {
        // 1.07 G voxels in 1 s ≈ 1.07 G VPS > 2 × 346 M ✓
        assert!(beats_paraview_2x(1 << 30, SimDuration::from_millis(1000)));
        // …but not in 4 s.
        assert!(!beats_paraview_2x(1 << 30, SimDuration::from_millis(4000)));
    }
}
