//! Minimal 3-vector math for the renderer (f32, by value, no dependencies).

use std::ops::{Add, Div, Mul, Neg, Sub};

#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

pub const fn vec3(x: f32, y: f32, z: f32) -> Vec3 {
    Vec3 { x, y, z }
}

impl Vec3 {
    pub const ZERO: Vec3 = vec3(0.0, 0.0, 0.0);

    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    pub fn cross(self, o: Vec3) -> Vec3 {
        vec3(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    pub fn normalized(self) -> Vec3 {
        let l = self.length();
        assert!(l > 0.0, "normalizing zero vector");
        self / l
    }

    pub fn min_elem(self, o: Vec3) -> Vec3 {
        vec3(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    pub fn max_elem(self, o: Vec3) -> Vec3 {
        vec3(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    pub fn get(self, axis: usize) -> f32 {
        match axis {
            0 => self.x,
            1 => self.y,
            _ => self.z,
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        vec3(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        vec3(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f32) -> Vec3 {
        vec3(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f32) -> Vec3 {
        vec3(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        vec3(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let a = vec3(1.0, 2.0, 3.0);
        let b = vec3(4.0, 5.0, 6.0);
        assert_eq!(a + b, vec3(5.0, 7.0, 9.0));
        assert_eq!(b - a, vec3(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, vec3(2.0, 4.0, 6.0));
        assert_eq!(a.dot(b), 32.0);
        assert_eq!(
            vec3(1.0, 0.0, 0.0).cross(vec3(0.0, 1.0, 0.0)),
            vec3(0.0, 0.0, 1.0)
        );
        assert!((vec3(3.0, 4.0, 0.0).length() - 5.0).abs() < 1e-6);
        let n = vec3(0.0, 0.0, 9.0).normalized();
        assert_eq!(n, vec3(0.0, 0.0, 1.0));
    }

    #[test]
    fn elementwise_and_axis() {
        let a = vec3(1.0, 5.0, 3.0);
        let b = vec3(2.0, 4.0, 6.0);
        assert_eq!(a.min_elem(b), vec3(1.0, 4.0, 3.0));
        assert_eq!(a.max_elem(b), vec3(2.0, 5.0, 6.0));
        assert_eq!(a.get(1), 5.0);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        Vec3::ZERO.normalized();
    }
}
