//! 1-D transfer functions: scalar value → color and opacity.
//!
//! The paper uses "a texture-based 1D transfer function to obtain the final
//! color and opacity of each ray fragment" (§3.2). A [`TransferFunction`] is
//! a set of control points baked into a 256-texel RGBA LUT served as an
//! [`mgpu_gpu::Texture1D`] on the device.

use mgpu_gpu::Texture1D;

/// LUT resolution (texels).
pub const LUT_SIZE: usize = 256;

/// A control point: scalar position in `[0,1]` → straight-alpha RGBA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlPoint {
    pub value: f32,
    pub rgba: [f32; 4],
}

/// A piecewise-linear transfer function.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferFunction {
    name: &'static str,
    points: Vec<ControlPoint>,
}

impl TransferFunction {
    /// Build from control points (sorted by `value`; clamped outside).
    pub fn from_points(name: &'static str, mut points: Vec<ControlPoint>) -> TransferFunction {
        assert!(!points.is_empty(), "transfer function needs control points");
        points.sort_by(|a, b| a.value.total_cmp(&b.value));
        TransferFunction { name, points }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The sorted control points (wire encoders serialize these; decoding
    /// through [`TransferFunction::from_points`] reconstructs an equal
    /// function as the points are already in canonical order).
    pub fn points(&self) -> &[ControlPoint] {
        &self.points
    }

    /// Look up a built-in preset by its [`TransferFunction::name`]. `None`
    /// for custom point sets — those travel over the wire as explicit
    /// points instead of a name.
    pub fn preset(name: &str) -> Option<TransferFunction> {
        match name {
            "bone" => Some(TransferFunction::bone()),
            "fire" => Some(TransferFunction::fire()),
            "smoke" => Some(TransferFunction::smoke()),
            "grayscale" => Some(TransferFunction::grayscale()),
            _ => None,
        }
    }

    /// Evaluate at scalar `v` (piecewise linear, clamped).
    pub fn eval(&self, v: f32) -> [f32; 4] {
        let pts = &self.points;
        if v <= pts[0].value {
            return pts[0].rgba;
        }
        if v >= pts[pts.len() - 1].value {
            return pts[pts.len() - 1].rgba;
        }
        let i = pts.partition_point(|p| p.value <= v).min(pts.len() - 1);
        let (a, b) = (&pts[i - 1], &pts[i]);
        let span = (b.value - a.value).max(1e-12);
        let t = (v - a.value) / span;
        let mut out = [0f32; 4];
        for (c, o) in out.iter_mut().enumerate() {
            *o = a.rgba[c] + (b.rgba[c] - a.rgba[c]) * t;
        }
        out
    }

    /// Bake into the 256-texel device LUT.
    pub fn bake(&self) -> Texture1D {
        let texels = (0..LUT_SIZE)
            .map(|i| self.eval((i as f32 + 0.5) / LUT_SIZE as f32))
            .collect();
        Texture1D::new(texels)
    }

    /// Device bytes of the baked LUT (static mapper state).
    pub fn device_bytes(&self) -> u64 {
        (LUT_SIZE * 16) as u64
    }

    /// CT-bone preset for the Skull: soft tissue faint and warm, bone bright
    /// and opaque.
    pub fn bone() -> TransferFunction {
        TransferFunction::from_points(
            "bone",
            vec![
                ControlPoint {
                    value: 0.00,
                    rgba: [0.0, 0.0, 0.0, 0.0],
                },
                ControlPoint {
                    value: 0.08,
                    rgba: [0.0, 0.0, 0.0, 0.0],
                },
                ControlPoint {
                    value: 0.18,
                    rgba: [0.55, 0.25, 0.15, 0.02],
                },
                ControlPoint {
                    value: 0.40,
                    rgba: [0.80, 0.55, 0.40, 0.08],
                },
                ControlPoint {
                    value: 0.65,
                    rgba: [0.95, 0.90, 0.80, 0.55],
                },
                ControlPoint {
                    value: 1.00,
                    rgba: [1.0, 1.0, 0.95, 0.95],
                },
            ],
        )
    }

    /// Fire preset for the Supernova: black→red→orange→white with rising
    /// opacity.
    pub fn fire() -> TransferFunction {
        TransferFunction::from_points(
            "fire",
            vec![
                ControlPoint {
                    value: 0.00,
                    rgba: [0.0, 0.0, 0.0, 0.0],
                },
                ControlPoint {
                    value: 0.10,
                    rgba: [0.1, 0.0, 0.0, 0.0],
                },
                ControlPoint {
                    value: 0.30,
                    rgba: [0.6, 0.05, 0.0, 0.08],
                },
                ControlPoint {
                    value: 0.55,
                    rgba: [0.9, 0.45, 0.05, 0.25],
                },
                ControlPoint {
                    value: 0.80,
                    rgba: [1.0, 0.8, 0.3, 0.6],
                },
                ControlPoint {
                    value: 1.00,
                    rgba: [1.0, 1.0, 0.9, 0.9],
                },
            ],
        )
    }

    /// Cool smoke preset for the Plume.
    pub fn smoke() -> TransferFunction {
        TransferFunction::from_points(
            "smoke",
            vec![
                ControlPoint {
                    value: 0.00,
                    rgba: [0.0, 0.0, 0.0, 0.0],
                },
                ControlPoint {
                    value: 0.05,
                    rgba: [0.1, 0.1, 0.2, 0.0],
                },
                ControlPoint {
                    value: 0.25,
                    rgba: [0.3, 0.4, 0.7, 0.06],
                },
                ControlPoint {
                    value: 0.55,
                    rgba: [0.55, 0.7, 0.9, 0.25],
                },
                ControlPoint {
                    value: 0.85,
                    rgba: [0.9, 0.95, 1.0, 0.7],
                },
                ControlPoint {
                    value: 1.00,
                    rgba: [1.0, 1.0, 1.0, 0.9],
                },
            ],
        )
    }

    /// Opacity-ramp grayscale (tests and debugging).
    pub fn grayscale() -> TransferFunction {
        TransferFunction::from_points(
            "grayscale",
            vec![
                ControlPoint {
                    value: 0.0,
                    rgba: [0.0, 0.0, 0.0, 0.0],
                },
                ControlPoint {
                    value: 1.0,
                    rgba: [1.0, 1.0, 1.0, 1.0],
                },
            ],
        )
    }

    /// Default preset per dataset name.
    pub fn for_dataset(name: &str) -> TransferFunction {
        match name {
            "skull" => TransferFunction::bone(),
            "supernova" => TransferFunction::fire(),
            "plume" => TransferFunction::smoke(),
            _ => TransferFunction::grayscale(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_interpolates_and_clamps() {
        let tf = TransferFunction::grayscale();
        assert_eq!(tf.eval(-1.0), [0.0; 4]);
        assert_eq!(tf.eval(2.0), [1.0; 4]);
        let mid = tf.eval(0.5);
        for c in mid {
            assert!((c - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn bake_matches_eval_at_texel_centers() {
        let tf = TransferFunction::fire();
        let lut = tf.bake();
        for i in [0usize, 17, 128, 255] {
            let u = (i as f32 + 0.5) / 256.0;
            let a = tf.eval(u);
            let b = lut.sample(u);
            for c in 0..4 {
                assert!((a[c] - b[c]).abs() < 1e-5, "texel {i} channel {c}");
            }
        }
    }

    #[test]
    fn presets_have_transparent_air() {
        for tf in [
            TransferFunction::bone(),
            TransferFunction::fire(),
            TransferFunction::smoke(),
        ] {
            assert_eq!(tf.eval(0.0)[3], 0.0, "{} air must be clear", tf.name());
            assert!(
                tf.eval(0.95)[3] > 0.4,
                "{} dense must be visible",
                tf.name()
            );
        }
    }

    #[test]
    fn for_dataset_mapping() {
        assert_eq!(TransferFunction::for_dataset("skull").name(), "bone");
        assert_eq!(TransferFunction::for_dataset("supernova").name(), "fire");
        assert_eq!(TransferFunction::for_dataset("plume").name(), "smoke");
        assert_eq!(TransferFunction::for_dataset("other").name(), "grayscale");
    }

    #[test]
    fn unsorted_points_get_sorted() {
        let tf = TransferFunction::from_points(
            "t",
            vec![
                ControlPoint {
                    value: 1.0,
                    rgba: [1.0; 4],
                },
                ControlPoint {
                    value: 0.0,
                    rgba: [0.0; 4],
                },
            ],
        );
        assert!(tf.eval(0.25)[0] < tf.eval(0.75)[0]);
    }
}
