//! Render bricks: the [`Chunk`]s of the rendering MapReduce job.
//!
//! A [`RenderBrick`] knows its geometry up front (device bytes, screen
//! footprint) but materializes voxels lazily through the shared
//! [`BrickStore`] at map time — this is what makes out-of-core rendering
//! work: the store's LRU budget bounds host memory while bricks stream
//! through the mappers.

use std::sync::Arc;

use mgpu_mapreduce::Chunk;
use mgpu_voldata::{BrickData, BrickInfo, BrickStore};

use crate::camera::Camera;
use crate::math::{vec3, Vec3};

/// Whether brick voxels are charged as disk reads by the DES.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Staging {
    /// Data already resident in host RAM (the paper's Figure-3 assumption:
    /// "assume that all data is initially resident within CPU system
    /// memory").
    HostResident,
    /// Streamed from node-local disk (out-of-core operation).
    Disk,
}

/// One brick of the volume, ready to be mapped.
pub struct RenderBrick {
    info: BrickInfo,
    store: Arc<BrickStore>,
    staging: Staging,
    ghost: u32,
}

impl RenderBrick {
    pub fn new(store: Arc<BrickStore>, id: usize, staging: Staging) -> RenderBrick {
        let info = store.grid().brick(id);
        let ghost = store.ghost();
        RenderBrick {
            info,
            store,
            staging,
            ghost,
        }
    }

    pub fn info(&self) -> BrickInfo {
        self.info
    }

    /// Materialize (or fetch cached) voxels with ghost layers.
    pub fn voxels(&self) -> Arc<BrickData> {
        self.store.get(self.info.id)
    }

    /// Stored (ghost-padded) dimensions, known without materializing.
    pub fn store_dims(&self) -> [usize; 3] {
        [
            self.info.size[0] as usize + 2 * self.ghost as usize,
            self.info.size[1] as usize + 2 * self.ghost as usize,
            self.info.size[2] as usize + 2 * self.ghost as usize,
        ]
    }

    /// World-space box of the brick core (no ghost).
    pub fn core_box(&self) -> (Vec3, Vec3) {
        let lo = vec3(
            self.info.origin[0] as f32,
            self.info.origin[1] as f32,
            self.info.origin[2] as f32,
        );
        let hi = lo
            + vec3(
                self.info.size[0] as f32,
                self.info.size[1] as f32,
                self.info.size[2] as f32,
            );
        (lo, hi)
    }

    /// Screen-space footprint: the pixel rectangle `(x0, y0, x1, y1)`
    /// (half-open) this brick can contribute to, or `None` when off-screen.
    /// Falls back to the full image if any corner is behind the camera.
    pub fn footprint(
        &self,
        camera: &Camera,
        width: u32,
        height: u32,
    ) -> Option<(u32, u32, u32, u32)> {
        let (lo, hi) = self.core_box();
        let mut min_x = f32::INFINITY;
        let mut min_y = f32::INFINITY;
        let mut max_x = f32::NEG_INFINITY;
        let mut max_y = f32::NEG_INFINITY;
        for zi in 0..2 {
            for yi in 0..2 {
                for xi in 0..2 {
                    let corner = vec3(
                        if xi == 0 { lo.x } else { hi.x },
                        if yi == 0 { lo.y } else { hi.y },
                        if zi == 0 { lo.z } else { hi.z },
                    );
                    match camera.project(corner, width, height) {
                        Some((px, py)) => {
                            min_x = min_x.min(px);
                            min_y = min_y.min(py);
                            max_x = max_x.max(px);
                            max_y = max_y.max(py);
                        }
                        // A corner behind the camera: footprint is unbounded,
                        // conservatively use the whole image.
                        None => return Some((0, 0, width, height)),
                    }
                }
            }
        }
        // One pixel of margin for the conservative rasterization of edges.
        let x0 = (min_x - 1.0).floor().max(0.0) as u32;
        let y0 = (min_y - 1.0).floor().max(0.0) as u32;
        let x1 = ((max_x + 1.0).ceil() as i64).clamp(0, width as i64) as u32;
        let y1 = ((max_y + 1.0).ceil() as i64).clamp(0, height as i64) as u32;
        if x0 >= x1 || y0 >= y1 {
            return None;
        }
        Some((x0, y0, x1, y1))
    }
}

impl Chunk for RenderBrick {
    fn id(&self) -> usize {
        self.info.id
    }

    fn device_bytes(&self) -> u64 {
        let d = self.store_dims();
        (d[0] * d[1] * d[2] * 4) as u64
    }

    fn disk_bytes(&self) -> u64 {
        match self.staging {
            Staging::HostResident => 0,
            // The disk holds the core voxels; ghost layers come from
            // adjacent reads already in page cache — charge the core.
            Staging::Disk => self.info.bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Scene;
    use crate::transfer::TransferFunction;
    use mgpu_voldata::{BrickGrid, BrickPolicy, Dataset};

    fn store_for(base: u32, bricks: u32) -> Arc<BrickStore> {
        let v = Dataset::Skull.volume(base);
        let grid = BrickGrid::subdivide(
            v.dims(),
            &BrickPolicy {
                min_bricks: bricks,
                max_brick_voxels: u64::MAX,
            },
        );
        Arc::new(BrickStore::new(v, grid, 1, u64::MAX))
    }

    #[test]
    fn chunk_bytes_account_for_ghost() {
        let store = store_for(16, 8);
        let b = RenderBrick::new(store, 0, Staging::HostResident);
        // 8³ core + 2-voxel padding = 10³ stored.
        assert_eq!(b.device_bytes(), 10 * 10 * 10 * 4);
        assert_eq!(b.disk_bytes(), 0);
    }

    #[test]
    fn disk_staging_charges_core_bytes() {
        let store = store_for(16, 8);
        let b = RenderBrick::new(store, 3, Staging::Disk);
        assert_eq!(b.disk_bytes(), 8 * 8 * 8 * 4);
    }

    #[test]
    fn footprints_cover_brick_projections() {
        let store = store_for(32, 8);
        let v = Dataset::Skull.volume(32);
        let scene = Scene::orbit(&v, 25.0, 15.0, TransferFunction::bone());
        let mut any = false;
        for id in 0..store.grid().brick_count() {
            let b = RenderBrick::new(Arc::clone(&store), id, Staging::HostResident);
            if let Some((x0, y0, x1, y1)) = b.footprint(&scene.camera, 256, 256) {
                any = true;
                assert!(x0 < x1 && y0 < y1);
                assert!(x1 <= 256 && y1 <= 256);
                // The brick center must project inside its own footprint.
                let (lo, hi) = b.core_box();
                let center = (lo + hi) * 0.5;
                let (cx, cy) = scene.camera.project(center, 256, 256).unwrap();
                assert!(cx >= x0 as f32 && cx <= x1 as f32);
                assert!(cy >= y0 as f32 && cy <= y1 as f32);
            }
        }
        assert!(any, "no brick projected on screen");
    }

    #[test]
    fn union_of_footprints_bounded_by_volume_footprint() {
        // Footprints of sub-bricks stay inside the whole volume's footprint
        // (+1 margin): a sanity check on the projection math.
        let store = store_for(32, 27);
        let v = Dataset::Skull.volume(32);
        let scene = Scene::orbit(&v, 40.0, -10.0, TransferFunction::bone());
        let whole = {
            let g = BrickGrid::subdivide(
                [32, 32, 32],
                &BrickPolicy {
                    min_bricks: 1,
                    max_brick_voxels: u64::MAX,
                },
            );
            let s = Arc::new(BrickStore::new(v, g, 1, u64::MAX));
            RenderBrick::new(s, 0, Staging::HostResident)
                .footprint(&scene.camera, 512, 512)
                .unwrap()
        };
        for id in 0..store.grid().brick_count() {
            let b = RenderBrick::new(Arc::clone(&store), id, Staging::HostResident);
            if let Some((x0, y0, x1, y1)) = b.footprint(&scene.camera, 512, 512) {
                assert!(x0 + 2 >= whole.0 && y0 + 2 >= whole.1);
                assert!(x1 <= whole.2 + 2 && y1 <= whole.3 + 2);
            }
        }
    }
}
