//! The (paper-rejected) combine stage, done safely.
//!
//! A combiner runs mapper-side on buffered pairs before they hit the wire
//! (§3.1: "we specifically omitted partial reduce/combine because it didn't
//! increase performance for our volume renderer"). Naïvely compositing a
//! mapper's fragments per pixel would be *wrong*: another mapper's segment
//! may lie between them in depth. [`AdjacentFragmentCombiner`] only merges
//! segments whose parametric intervals abut exactly — bricks partition the
//! ray, so nothing can sit between abutting segments, making the merge an
//! application of *over*'s associativity and bit-safe up to f32 rounding.
//!
//! Why it barely helps (the paper's finding, reproduced by
//! `ablate_combiner`): fragments of one pixel that abut are only produced by
//! the *same* mapper when it happens to own neighbouring bricks along the
//! ray — with round-robin brick assignment that is rare.

use mgpu_mapreduce::{Combiner, Key};

use crate::composite::over;
use crate::fragment::Fragment;

/// Merges depth-adjacent fragments of the same pixel.
#[derive(Debug, Clone)]
pub struct AdjacentFragmentCombiner {
    /// Adjacency tolerance in ray-parameter units (fraction of a step).
    pub tol: f32,
}

impl Default for AdjacentFragmentCombiner {
    fn default() -> Self {
        AdjacentFragmentCombiner { tol: 1e-3 }
    }
}

impl Combiner<Fragment> for AdjacentFragmentCombiner {
    fn combine(&self, _key: Key, values: &mut Vec<Fragment>) {
        if values.len() < 2 {
            return;
        }
        values.sort_by(|a, b| a.depth.total_cmp(&b.depth));
        let mut out: Vec<Fragment> = Vec::with_capacity(values.len());
        for f in values.drain(..) {
            match out.last_mut() {
                Some(last) if last.adjacent_before(&f, self.tol) => {
                    last.color = over(last.color, f.color);
                    last.exit = f.exit;
                }
                _ => out.push(f),
            }
        }
        *values = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::composite_unsorted;

    fn frag(a: f32, depth: f32, exit: f32) -> Fragment {
        Fragment {
            color: [0.1 * a, 0.2 * a, 0.3 * a, a],
            depth,
            exit,
        }
    }

    #[test]
    fn merges_adjacent_segments() {
        let c = AdjacentFragmentCombiner::default();
        let mut vals = vec![frag(0.3, 2.0, 4.0), frag(0.4, 0.0, 2.0)];
        let reference = composite_unsorted(&mut vals.clone(), [0.0; 4]);
        c.combine(0, &mut vals);
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0].depth, 0.0);
        assert_eq!(vals[0].exit, 4.0);
        let merged = composite_unsorted(&mut vals, [0.0; 4]);
        for i in 0..4 {
            assert!((merged[i] - reference[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn keeps_gapped_segments_apart() {
        let c = AdjacentFragmentCombiner::default();
        // A gap between 2.0 and 3.0: another mapper's brick could live there.
        let mut vals = vec![frag(0.4, 0.0, 2.0), frag(0.3, 3.0, 5.0)];
        c.combine(0, &mut vals);
        assert_eq!(vals.len(), 2);
    }

    #[test]
    fn chains_of_adjacent_segments_collapse() {
        let c = AdjacentFragmentCombiner::default();
        let mut vals = vec![
            frag(0.2, 4.0, 6.0),
            frag(0.2, 0.0, 2.0),
            frag(0.2, 2.0, 4.0),
        ];
        let reference = composite_unsorted(&mut vals.clone(), [0.0; 4]);
        c.combine(0, &mut vals);
        assert_eq!(vals.len(), 1);
        let merged = composite_unsorted(&mut vals, [0.0; 4]);
        for i in 0..4 {
            assert!((merged[i] - reference[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn single_fragment_untouched() {
        let c = AdjacentFragmentCombiner::default();
        let mut vals = vec![frag(0.5, 1.0, 2.0)];
        c.combine(0, &mut vals);
        assert_eq!(vals.len(), 1);
    }
}
