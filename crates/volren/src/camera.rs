//! Pinhole camera, orbiting scene setup, and screen-space projection (used
//! both for ray generation and for computing a brick's screen footprint —
//! "the grid is made to match the size of the sub-image onto which the
//! current chunk projects", §3.2).

use mgpu_voldata::Volume;

use crate::math::{vec3, Vec3};
use crate::ray::Ray;
use crate::transfer::TransferFunction;

/// A perspective pinhole camera in volume (voxel) coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct Camera {
    pub eye: Vec3,
    forward: Vec3,
    right: Vec3,
    up: Vec3,
    tan_half_fov: f32,
}

impl Camera {
    pub fn look_at(eye: Vec3, target: Vec3, up_hint: Vec3, fov_y_deg: f32) -> Camera {
        let forward = (target - eye).normalized();
        let mut right = forward.cross(up_hint);
        if right.length() < 1e-6 {
            // Degenerate up hint: pick any perpendicular axis.
            right = forward.cross(vec3(0.0, 1.0, 0.0));
            if right.length() < 1e-6 {
                right = forward.cross(vec3(1.0, 0.0, 0.0));
            }
        }
        let right = right.normalized();
        let up = right.cross(forward);
        Camera {
            eye,
            forward,
            right,
            up,
            tan_half_fov: (fov_y_deg.to_radians() * 0.5).tan(),
        }
    }

    /// The camera's exact internal state as plain floats, in field order
    /// `(eye, forward, right, up, tan_half_fov)` — what a wire protocol
    /// ships so [`Camera::from_raw_parts`] reconstructs this camera
    /// bit-identically on the other side (floats travel by bit pattern; no
    /// re-derivation, no rounding).
    #[allow(clippy::type_complexity)]
    pub fn raw_parts(&self) -> ([f32; 3], [f32; 3], [f32; 3], [f32; 3], f32) {
        let v = |v: Vec3| [v.x, v.y, v.z];
        (
            v(self.eye),
            v(self.forward),
            v(self.right),
            v(self.up),
            self.tan_half_fov,
        )
    }

    /// Rebuild a camera from [`Camera::raw_parts`] output, bit-identically.
    /// The basis is trusted as-is (no re-orthonormalization): this is a
    /// transport constructor, not a modeling one — use
    /// [`Camera::look_at`] to build cameras from scene intent.
    pub fn from_raw_parts(
        eye: [f32; 3],
        forward: [f32; 3],
        right: [f32; 3],
        up: [f32; 3],
        tan_half_fov: f32,
    ) -> Camera {
        let v = |a: [f32; 3]| vec3(a[0], a[1], a[2]);
        Camera {
            eye: v(eye),
            forward: v(forward),
            right: v(right),
            up: v(up),
            tan_half_fov,
        }
    }

    /// The ray through pixel `(px, py)` of a `width × height` image
    /// (pixel centers, y growing downward).
    ///
    /// Defined as `ray_from_ndc(ndc_u(..), ndc_v(..))` so batched kernels can
    /// hoist the per-row/per-column plane coordinates out of the pixel loop
    /// and still generate bit-identical rays.
    #[inline]
    pub fn ray(&self, px: u32, py: u32, width: u32, height: u32) -> Ray {
        self.ray_from_ndc(self.ndc_u(px, width, height), self.ndc_v(py, height))
    }

    /// Horizontal image-plane coordinate of pixel column `px` (scaled by the
    /// FOV and aspect ratio). Depends only on the column.
    #[inline]
    pub fn ndc_u(&self, px: u32, width: u32, height: u32) -> f32 {
        let aspect = width as f32 / height as f32;
        ((px as f32 + 0.5) / width as f32 * 2.0 - 1.0) * self.tan_half_fov * aspect
    }

    /// Vertical image-plane coordinate of pixel row `py` (y growing
    /// downward). Depends only on the row.
    #[inline]
    pub fn ndc_v(&self, py: u32, height: u32) -> f32 {
        (1.0 - (py as f32 + 0.5) / height as f32 * 2.0) * self.tan_half_fov
    }

    /// The ray through image-plane coordinates `(u, v)` as produced by
    /// [`Camera::ndc_u`]/[`Camera::ndc_v`].
    #[inline]
    pub fn ray_from_ndc(&self, u: f32, v: f32) -> Ray {
        let dir = (self.forward + self.right * u + self.up * v).normalized();
        Ray {
            origin: self.eye,
            dir,
        }
    }

    /// Project a world point to continuous pixel coordinates; `None` when
    /// behind the camera.
    pub fn project(&self, p: Vec3, width: u32, height: u32) -> Option<(f32, f32)> {
        let d = p - self.eye;
        let z = d.dot(self.forward);
        if z <= 1e-6 {
            return None;
        }
        let aspect = width as f32 / height as f32;
        let x = d.dot(self.right) / (z * self.tan_half_fov * aspect);
        let y = d.dot(self.up) / (z * self.tan_half_fov);
        Some((
            (x + 1.0) * 0.5 * width as f32,
            (1.0 - y) * 0.5 * height as f32,
        ))
    }
}

/// A renderable scene: camera + transfer function + background.
#[derive(Debug, Clone)]
pub struct Scene {
    pub camera: Camera,
    pub transfer: TransferFunction,
    /// Straight-alpha background color fragments blend against.
    pub background: [f32; 4],
}

impl Scene {
    /// Orbit the volume: `azimuth`/`elevation` in degrees around the volume
    /// center at a distance framing the whole volume, 40° vertical FOV.
    pub fn orbit(
        volume: &Volume,
        azimuth_deg: f32,
        elevation_deg: f32,
        transfer: TransferFunction,
    ) -> Scene {
        let d = volume.dims();
        let dims = vec3(d[0] as f32, d[1] as f32, d[2] as f32);
        let center = dims * 0.5;
        let radius = dims.length() * 0.5;
        let az = azimuth_deg.to_radians();
        let el = elevation_deg.to_radians();
        let dir = vec3(el.cos() * az.cos(), el.cos() * az.sin(), el.sin());
        // The paper's renders fill the frame (Figure 2), so the orbit sits
        // inside the strict bounding-sphere distance (radius/tan20° ≈ 2.75 r)
        // and lets the volume's far corners crop slightly.
        let eye = center + dir * (radius * 2.4);
        let up = if el.abs() > 80f32.to_radians() {
            vec3(0.0, 1.0, 0.0)
        } else {
            vec3(0.0, 0.0, 1.0)
        };
        Scene {
            camera: Camera::look_at(eye, center, up, 40.0),
            transfer,
            background: [0.0, 0.0, 0.0, 0.0],
        }
    }

    pub fn with_background(mut self, background: [f32; 4]) -> Scene {
        self.background = background;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_voldata::Dataset;

    fn test_camera() -> Camera {
        Camera::look_at(vec3(0.0, 0.0, 10.0), Vec3::ZERO, vec3(0.0, 1.0, 0.0), 45.0)
    }

    #[test]
    fn center_pixel_looks_forward() {
        let c = test_camera();
        let r = c.ray(256, 256, 512, 512);
        assert!((r.dir.z + 1.0).abs() < 1e-3, "center ray should be -z");
    }

    #[test]
    fn project_inverts_ray() {
        let c = test_camera();
        for (px, py) in [(10u32, 20u32), (256, 256), (500, 40)] {
            let r = c.ray(px, py, 512, 512);
            let p = r.origin + r.dir * 7.3;
            let (qx, qy) = c.project(p, 512, 512).unwrap();
            assert!((qx - (px as f32 + 0.5)).abs() < 1e-2, "{qx} vs {px}");
            assert!((qy - (py as f32 + 0.5)).abs() < 1e-2, "{qy} vs {py}");
        }
    }

    #[test]
    fn behind_camera_does_not_project() {
        let c = test_camera();
        assert!(c.project(vec3(0.0, 0.0, 20.0), 512, 512).is_none());
    }

    #[test]
    fn orbit_frames_the_volume() {
        let v = Dataset::Skull.volume(32);
        let scene = Scene::orbit(&v, 30.0, 20.0, TransferFunction::bone());
        // Paper-style tight framing: every corner projects in front of the
        // camera and within ~20% beyond the 512² frame; the volume center
        // lands well inside it.
        for zc in [0.0f32, 32.0] {
            for yc in [0.0f32, 32.0] {
                for xc in [0.0f32, 32.0] {
                    let (px, py) = scene
                        .camera
                        .project(vec3(xc, yc, zc), 512, 512)
                        .expect("corner behind camera");
                    assert!(px > -110.0 && px < 622.0, "x {px}");
                    assert!(py > -110.0 && py < 622.0, "y {py}");
                }
            }
        }
        let (cx, cy) = scene
            .camera
            .project(vec3(16.0, 16.0, 16.0), 512, 512)
            .unwrap();
        assert!((cx - 256.0).abs() < 64.0 && (cy - 256.0).abs() < 64.0);
    }

    /// The transport constructor round-trips the camera bit-for-bit — the
    /// foundation of shipping arbitrary (non-orbit) scenes over the wire.
    #[test]
    fn raw_parts_roundtrip_bit_exact() {
        let c = Camera::look_at(
            vec3(3.7, -2.1, 9.3),
            vec3(0.4, 0.2, -0.6),
            vec3(0.1, 1.0, 0.05),
            37.5,
        );
        let (eye, forward, right, up, tan) = c.raw_parts();
        let back = Camera::from_raw_parts(eye, forward, right, up, tan);
        assert_eq!(back, c);
        // Same rays, bit for bit.
        for (px, py) in [(0, 0), (17, 211), (511, 511)] {
            let a = c.ray(px, py, 512, 512);
            let b = back.ray(px, py, 512, 512);
            assert_eq!(a.origin, b.origin);
            assert_eq!(a.dir.x.to_bits(), b.dir.x.to_bits());
            assert_eq!(a.dir.y.to_bits(), b.dir.y.to_bits());
            assert_eq!(a.dir.z.to_bits(), b.dir.z.to_bits());
        }
    }

    #[test]
    fn straight_down_view_is_well_defined() {
        let v = Dataset::Skull.volume(16);
        let scene = Scene::orbit(&v, 0.0, 89.9, TransferFunction::bone());
        let r = scene.camera.ray(100, 100, 512, 512);
        assert!(r.dir.length() > 0.99);
    }
}
