//! Image stitching: assemble reduced per-pixel colors into the final image.
//!
//! The paper treats stitching as a phase outside the MapReduce timings
//! ("neither of these tasks use our library"); we implement it for actual
//! image output but the DES does not charge it to any Figure-3 bucket.

use mgpu_mapreduce::Key;

use crate::composite::composite_sorted;
use crate::image::Image;

/// Build the final image: reduced pixels land at their keys; pixels no
/// fragment reached show the pure background. Takes the job output's SoA
/// columns (`keys[i]` pairs with `colors[i]`) directly — no tuple
/// re-materialization after the reduce.
pub fn stitch(
    keys: &[Key],
    colors: &[[f32; 4]],
    width: u32,
    height: u32,
    background: [f32; 4],
) -> Image {
    assert_eq!(keys.len(), colors.len(), "SoA column lengths differ");
    let bg = composite_sorted(&[], background);
    let mut img = Image::filled(width, height, bg);
    for (&key, &color) in keys.iter().zip(colors) {
        assert!(
            key < width * height,
            "reduced key {key} outside {width}x{height} image"
        );
        img.set_linear(key, color);
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn places_pixels_and_fills_background() {
        let keys = [0u32, 5];
        let colors = [[1.0, 0.0, 0.0, 1.0], [0.0, 1.0, 0.0, 1.0]];
        let img = stitch(&keys, &colors, 3, 2, [0.2, 0.2, 0.2, 1.0]);
        assert_eq!(img.get(0, 0), [1.0, 0.0, 0.0, 1.0]);
        assert_eq!(img.get(2, 1), [0.0, 1.0, 0.0, 1.0]);
        let bg = img.get(1, 0);
        assert!((bg[0] - 0.2).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_image_keys() {
        stitch(&[6], &[[0.0; 4]], 3, 2, [0.0; 4]);
    }
}
