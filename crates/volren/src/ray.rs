//! Rays and slab-method AABB intersection ("All rays are intersected against
//! a bounding box and any non-intersecting rays are immediately discarded",
//! §3.2).

use crate::math::Vec3;

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    pub origin: Vec3,
    pub dir: Vec3,
}

impl Ray {
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.dir * t
    }

    /// Slab intersection with the box `[lo, hi]`; returns the parametric
    /// entry/exit `(t0, t1)` with `t0 ≤ t1`, clipped to `t ≥ 0` (the ray
    /// starts at its origin). `None` when the ray misses or the box is
    /// entirely behind.
    #[inline]
    pub fn intersect_aabb(&self, lo: Vec3, hi: Vec3) -> Option<(f32, f32)> {
        SlabTest::new(self.origin, lo, hi).intersect(self.dir)
    }
}

/// Slab-method invariants hoisted for intersecting many rays that share one
/// origin against one box — the camera-eye/brick-box case in the batched ray
/// caster. The per-axis `lo − o` / `hi − o` differences and the parallel-ray
/// containment test depend only on `(origin, box)`, so a whole kernel block
/// computes them once. [`SlabTest::intersect`] performs exactly the float
/// operations of [`Ray::intersect_aabb`], in the same order, so results are
/// bit-identical.
#[derive(Debug, Clone, Copy)]
pub struct SlabTest {
    lo_m_o: [f32; 3],
    hi_m_o: [f32; 3],
    /// Whether the shared origin lies inside each axis slab (decides
    /// parallel rays).
    inside: [bool; 3],
}

impl SlabTest {
    pub fn new(origin: Vec3, lo: Vec3, hi: Vec3) -> SlabTest {
        let mut lo_m_o = [0.0f32; 3];
        let mut hi_m_o = [0.0f32; 3];
        let mut inside = [false; 3];
        for axis in 0..3 {
            let o = origin.get(axis);
            lo_m_o[axis] = lo.get(axis) - o;
            hi_m_o[axis] = hi.get(axis) - o;
            inside[axis] = !(o < lo.get(axis) || o > hi.get(axis));
        }
        SlabTest {
            lo_m_o,
            hi_m_o,
            inside,
        }
    }

    /// Intersect a ray with direction `dir` from the shared origin;
    /// bit-identical to `Ray { origin, dir }.intersect_aabb(lo, hi)`.
    #[inline]
    pub fn intersect(&self, dir: Vec3) -> Option<(f32, f32)> {
        let mut t0 = 0.0f32;
        let mut t1 = f32::INFINITY;
        for axis in 0..3 {
            let d = dir.get(axis);
            let (mut near, mut far);
            if d.abs() < 1e-12 {
                // Parallel to the slab: inside or miss.
                if !self.inside[axis] {
                    return None;
                }
                continue;
            } else {
                near = self.lo_m_o[axis] / d;
                far = self.hi_m_o[axis] / d;
                if near > far {
                    std::mem::swap(&mut near, &mut far);
                }
            }
            t0 = t0.max(near);
            t1 = t1.min(far);
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::vec3;

    fn unit_box() -> (Vec3, Vec3) {
        (vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0))
    }

    #[test]
    fn straight_hit() {
        let (lo, hi) = unit_box();
        let r = Ray {
            origin: vec3(0.5, 0.5, -2.0),
            dir: vec3(0.0, 0.0, 1.0),
        };
        let (t0, t1) = r.intersect_aabb(lo, hi).unwrap();
        assert!((t0 - 2.0).abs() < 1e-6);
        assert!((t1 - 3.0).abs() < 1e-6);
    }

    #[test]
    fn miss() {
        let (lo, hi) = unit_box();
        let r = Ray {
            origin: vec3(2.0, 2.0, -2.0),
            dir: vec3(0.0, 0.0, 1.0),
        };
        assert!(r.intersect_aabb(lo, hi).is_none());
    }

    #[test]
    fn behind_camera_is_clipped() {
        let (lo, hi) = unit_box();
        let r = Ray {
            origin: vec3(0.5, 0.5, 5.0),
            dir: vec3(0.0, 0.0, 1.0),
        };
        assert!(r.intersect_aabb(lo, hi).is_none());
    }

    #[test]
    fn origin_inside_starts_at_zero() {
        let (lo, hi) = unit_box();
        let r = Ray {
            origin: vec3(0.5, 0.5, 0.5),
            dir: vec3(0.0, 0.0, 1.0),
        };
        let (t0, t1) = r.intersect_aabb(lo, hi).unwrap();
        assert_eq!(t0, 0.0);
        assert!((t1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn diagonal_hit() {
        let (lo, hi) = unit_box();
        let r = Ray {
            origin: vec3(-1.0, -1.0, -1.0),
            dir: vec3(1.0, 1.0, 1.0).normalized(),
        };
        let (t0, t1) = r.intersect_aabb(lo, hi).unwrap();
        let sqrt3 = 3f32.sqrt();
        assert!((t0 - sqrt3).abs() < 1e-5);
        assert!((t1 - 2.0 * sqrt3).abs() < 1e-5);
    }

    #[test]
    fn parallel_inside_slab() {
        let (lo, hi) = unit_box();
        let r = Ray {
            origin: vec3(0.5, 0.5, -1.0),
            dir: vec3(0.0, 0.0, 1.0),
        };
        // x and y components are zero but the origin is inside those slabs.
        assert!(r.intersect_aabb(lo, hi).is_some());
        let outside = Ray {
            origin: vec3(1.5, 0.5, -1.0),
            dir: vec3(0.0, 0.0, 1.0),
        };
        assert!(outside.intersect_aabb(lo, hi).is_none());
    }

    /// The original per-ray slab walk, kept verbatim as the oracle for the
    /// hoisted [`SlabTest`] (which `intersect_aabb` now delegates to).
    fn reference_intersect(ray: &Ray, lo: Vec3, hi: Vec3) -> Option<(f32, f32)> {
        let mut t0 = 0.0f32;
        let mut t1 = f32::INFINITY;
        for axis in 0..3 {
            let o = ray.origin.get(axis);
            let d = ray.dir.get(axis);
            let (mut near, mut far);
            if d.abs() < 1e-12 {
                if o < lo.get(axis) || o > hi.get(axis) {
                    return None;
                }
                continue;
            } else {
                near = (lo.get(axis) - o) / d;
                far = (hi.get(axis) - o) / d;
                if near > far {
                    std::mem::swap(&mut near, &mut far);
                }
            }
            t0 = t0.max(near);
            t1 = t1.min(far);
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }

    /// The hoisted slab test must agree bit-for-bit with the per-ray path
    /// across hits, misses, parallel rays and degenerate directions.
    #[test]
    fn slab_test_bit_identical_to_intersect_aabb() {
        let boxes = [
            (vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0)),
            (vec3(-3.5, 2.0, 0.25), vec3(4.5, 9.0, 0.75)),
        ];
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 40) as f32 / (1u32 << 24) as f32) * 20.0 - 10.0
        };
        for (lo, hi) in boxes {
            for _ in 0..500 {
                let origin = vec3(rnd(), rnd(), rnd());
                let mut dir = vec3(rnd(), rnd(), rnd());
                // Mix in axis-parallel and zero components.
                if dir.x.abs() < 2.0 {
                    dir.x = 0.0;
                }
                let ray = Ray { origin, dir };
                let slabs = SlabTest::new(origin, lo, hi);
                let a = reference_intersect(&ray, lo, hi);
                let b = slabs.intersect(dir);
                match (a, b) {
                    (None, None) => {}
                    (Some((a0, a1)), Some((b0, b1))) => {
                        assert_eq!(a0.to_bits(), b0.to_bits());
                        assert_eq!(a1.to_bits(), b1.to_bits());
                    }
                    _ => panic!("hit/miss disagreement at {origin:?} {dir:?}"),
                }
            }
        }
    }
}
