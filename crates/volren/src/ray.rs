//! Rays and slab-method AABB intersection ("All rays are intersected against
//! a bounding box and any non-intersecting rays are immediately discarded",
//! §3.2).

use crate::math::Vec3;

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    pub origin: Vec3,
    pub dir: Vec3,
}

impl Ray {
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.dir * t
    }

    /// Slab intersection with the box `[lo, hi]`; returns the parametric
    /// entry/exit `(t0, t1)` with `t0 ≤ t1`, clipped to `t ≥ 0` (the ray
    /// starts at its origin). `None` when the ray misses or the box is
    /// entirely behind.
    pub fn intersect_aabb(&self, lo: Vec3, hi: Vec3) -> Option<(f32, f32)> {
        let mut t0 = 0.0f32;
        let mut t1 = f32::INFINITY;
        for axis in 0..3 {
            let o = self.origin.get(axis);
            let d = self.dir.get(axis);
            let (mut near, mut far);
            if d.abs() < 1e-12 {
                // Parallel to the slab: inside or miss.
                if o < lo.get(axis) || o > hi.get(axis) {
                    return None;
                }
                continue;
            } else {
                near = (lo.get(axis) - o) / d;
                far = (hi.get(axis) - o) / d;
                if near > far {
                    std::mem::swap(&mut near, &mut far);
                }
            }
            t0 = t0.max(near);
            t1 = t1.min(far);
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::vec3;

    fn unit_box() -> (Vec3, Vec3) {
        (vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0))
    }

    #[test]
    fn straight_hit() {
        let (lo, hi) = unit_box();
        let r = Ray {
            origin: vec3(0.5, 0.5, -2.0),
            dir: vec3(0.0, 0.0, 1.0),
        };
        let (t0, t1) = r.intersect_aabb(lo, hi).unwrap();
        assert!((t0 - 2.0).abs() < 1e-6);
        assert!((t1 - 3.0).abs() < 1e-6);
    }

    #[test]
    fn miss() {
        let (lo, hi) = unit_box();
        let r = Ray {
            origin: vec3(2.0, 2.0, -2.0),
            dir: vec3(0.0, 0.0, 1.0),
        };
        assert!(r.intersect_aabb(lo, hi).is_none());
    }

    #[test]
    fn behind_camera_is_clipped() {
        let (lo, hi) = unit_box();
        let r = Ray {
            origin: vec3(0.5, 0.5, 5.0),
            dir: vec3(0.0, 0.0, 1.0),
        };
        assert!(r.intersect_aabb(lo, hi).is_none());
    }

    #[test]
    fn origin_inside_starts_at_zero() {
        let (lo, hi) = unit_box();
        let r = Ray {
            origin: vec3(0.5, 0.5, 0.5),
            dir: vec3(0.0, 0.0, 1.0),
        };
        let (t0, t1) = r.intersect_aabb(lo, hi).unwrap();
        assert_eq!(t0, 0.0);
        assert!((t1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn diagonal_hit() {
        let (lo, hi) = unit_box();
        let r = Ray {
            origin: vec3(-1.0, -1.0, -1.0),
            dir: vec3(1.0, 1.0, 1.0).normalized(),
        };
        let (t0, t1) = r.intersect_aabb(lo, hi).unwrap();
        let sqrt3 = 3f32.sqrt();
        assert!((t0 - sqrt3).abs() < 1e-5);
        assert!((t1 - 2.0 * sqrt3).abs() < 1e-5);
    }

    #[test]
    fn parallel_inside_slab() {
        let (lo, hi) = unit_box();
        let r = Ray {
            origin: vec3(0.5, 0.5, -1.0),
            dir: vec3(0.0, 0.0, 1.0),
        };
        // x and y components are zero but the origin is inside those slabs.
        assert!(r.intersect_aabb(lo, hi).is_some());
        let outside = Ray {
            origin: vec3(1.5, 0.5, -1.0),
            dir: vec3(0.0, 0.0, 1.0),
        };
        assert!(outside.intersect_aabb(lo, hi).is_none());
    }
}
