//! The compositing Reducer: per-pixel depth sort + front-to-back blend
//! (§3.1.2 / §3.2 — performed on the CPU, the paper's empirically faster
//! choice at this scale).

use mgpu_mapreduce::{Key, Reducer};

use crate::composite::composite_unsorted;
use crate::fragment::Fragment;

/// Reduces all fragments of one pixel into its final straight-alpha color.
#[derive(Debug, Clone)]
pub struct CompositeReducer {
    pub background: [f32; 4],
}

impl Reducer for CompositeReducer {
    type Value = Fragment;
    type Out = [f32; 4];

    fn reduce(&self, _key: Key, values: &mut Vec<Fragment>) -> [f32; 4] {
        composite_unsorted(values, self.background)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_is_order_invariant() {
        let r = CompositeReducer {
            background: [0.0; 4],
        };
        let a = Fragment {
            color: [0.2, 0.0, 0.0, 0.4],
            depth: 1.0,
            exit: 2.0,
        };
        let b = Fragment {
            color: [0.0, 0.3, 0.0, 0.6],
            depth: 2.0,
            exit: 3.0,
        };
        let fwd = r.reduce(0, &mut vec![a, b]);
        let rev = r.reduce(0, &mut vec![b, a]);
        for c in 0..4 {
            assert!((fwd[c] - rev[c]).abs() < 1e-6);
        }
    }

    #[test]
    fn lone_fragment_blends_background() {
        let r = CompositeReducer {
            background: [1.0, 1.0, 1.0, 1.0],
        };
        let f = Fragment {
            color: [0.5, 0.5, 0.5, 0.5],
            depth: 0.0,
            exit: 1.0,
        };
        let out = r.reduce(7, &mut vec![f]);
        // 0.5 premult + 0.5 × white = 1.0 in each channel.
        for c in &out[..3] {
            assert!((c - 1.0).abs() < 1e-6);
        }
        assert!((out[3] - 1.0).abs() < 1e-6);
    }
}
