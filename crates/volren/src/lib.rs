//! # mgpu-volren — the multi-GPU MapReduce volume renderer
//!
//! The application layer of the reproduction of *"Multi-GPU Volume Rendering
//! using MapReduce"* (Stuart et al., 2010): ray-casting volume rendering as
//! a MapReduce job over volume bricks.
//!
//! * Map — [`kernel::RayCastKernel`] per [`brick::RenderBrick`] (§3.2: 16×16
//!   blocks over the brick's screen footprint, ray–box intersection,
//!   fixed-step trilinear sampling, 1-D transfer function, early
//!   termination, front-to-back compositing);
//! * Partition — pixel-index keys, per-pixel round-robin
//!   ([`config::PartitionStrategy`] offers the alternatives);
//! * Sort — θ(n) counting sort in the substrate;
//! * Reduce — [`reduce::CompositeReducer`]: per-pixel depth sort + *over*.
//!
//! [`renderer::render`] drives the whole pipeline and returns a real image
//! plus the DES-replayed timing report. [`baseline`] holds the unbricked
//! reference renderer (the correctness oracle) and the ParaView-class
//! comparator from the paper's footnote 1; [`binary_swap`] models the
//! alternative compositor of §6.1.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod binary_swap;
pub mod brick;
pub mod camera;
pub mod combine;
pub mod composite;
pub mod config;
pub mod fragment;
pub mod image;
pub mod kernel;
pub mod mapper;
pub mod math;
pub mod ray;
pub mod reduce;
pub mod renderer;
pub mod stitch;
pub mod transfer;

pub use brick::{RenderBrick, Staging};
pub use camera::{Camera, Scene};
pub use config::{Compositor, PartitionStrategy, RenderConfig, Residency};
pub use fragment::Fragment;
pub use image::Image;
pub use renderer::{render, render_planned, FramePlan, RenderOutcome, RenderReport};
pub use transfer::TransferFunction;
