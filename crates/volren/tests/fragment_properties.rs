//! Property tests on the kernel's fragment semantics: segment intervals
//! along a ray must abut exactly across brick boundaries (half-open
//! ownership), and compositing the segments must equal marching the whole
//! ray — the foundation of partial-ray compositing.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

use mgpu_cluster::GpuId;
use mgpu_mapreduce::{GpuMapper, SENTINEL_KEY};
use mgpu_voldata::{BrickGrid, BrickPolicy, BrickStore, Dataset, Volume};
use mgpu_volren::brick::{RenderBrick, Staging};
use mgpu_volren::camera::Scene;
use mgpu_volren::mapper::VolumeMapper;
use mgpu_volren::{Fragment, TransferFunction};

fn fragments_by_pixel(
    volume: &Volume,
    scene: &Scene,
    bricks: u32,
    image: u32,
) -> HashMap<u32, Vec<Fragment>> {
    let grid = BrickGrid::subdivide(
        volume.dims(),
        &BrickPolicy {
            min_bricks: bricks,
            max_brick_voxels: u64::MAX,
        },
    );
    let store = Arc::new(BrickStore::new(volume.clone(), grid, 1, u64::MAX));
    let mapper = VolumeMapper::new(scene.clone(), (image, image), 1.0, 1.1, 1);
    let mut by_pixel: HashMap<u32, Vec<Fragment>> = HashMap::new();
    for id in 0..store.grid().brick_count() {
        let brick = RenderBrick::new(Arc::clone(&store), id, Staging::HostResident);
        let out = mapper.map_chunk(GpuId(0), &brick);
        for (k, f) in out.iter() {
            if k != SENTINEL_KEY {
                by_pixel.entry(k).or_default().push(*f);
            }
        }
    }
    by_pixel
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn segments_abut_and_never_overlap(
        az in 0f32..360.0,
        el in -50f32..50.0,
        bricks in 2u32..12,
    ) {
        let volume = Dataset::Supernova.volume(24);
        let scene = Scene::orbit(&volume, az, el, TransferFunction::grayscale());
        let by_pixel = fragments_by_pixel(&volume, &scene, bricks, 48);
        prop_assert!(!by_pixel.is_empty());
        for (pixel, frags) in &by_pixel {
            let mut sorted = frags.clone();
            sorted.sort_by(|a, b| a.depth.total_cmp(&b.depth));
            for w in sorted.windows(2) {
                // Intervals [depth, exit) of consecutive fragments of a ray
                // must not overlap (half-open ownership)…
                prop_assert!(
                    w[0].exit <= w[1].depth + 1e-3,
                    "pixel {pixel}: overlap {} > {}",
                    w[0].exit,
                    w[1].depth
                );
                prop_assert!(w[0].depth < w[1].depth + 1e-6);
            }
            for f in &sorted {
                prop_assert!(f.exit > f.depth, "degenerate segment");
                prop_assert!(f.color[3] > 0.0, "empty fragment emitted");
                prop_assert!(f.color[3] <= 1.0 + 1e-5);
            }
        }
    }

    #[test]
    fn finer_bricking_creates_more_adjacent_fragments(
        az in 0f32..360.0,
    ) {
        // With more bricks, per-pixel fragment counts rise but the union of
        // their intervals along each ray stays identical (same volume).
        let volume = Dataset::Skull.volume(24);
        let scene = Scene::orbit(&volume, az, 15.0, TransferFunction::grayscale());
        let coarse = fragments_by_pixel(&volume, &scene, 2, 48);
        let fine = fragments_by_pixel(&volume, &scene, 16, 48);
        let coarse_total: usize = coarse.values().map(|v| v.len()).sum();
        let fine_total: usize = fine.values().map(|v| v.len()).sum();
        prop_assert!(fine_total >= coarse_total);
    }
}
