//! Renderer-level edge cases: tiny images, extreme configurations, plume
//! aspect ratios, background blending.

use mgpu_cluster::ClusterSpec;
use mgpu_voldata::Dataset;
use mgpu_volren::camera::Scene;
use mgpu_volren::renderer::render;
use mgpu_volren::{RenderConfig, TransferFunction};

#[test]
fn tiny_image_renders() {
    let volume = Dataset::Skull.volume(16);
    let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
    let cfg = RenderConfig::test_size(16);
    let spec = ClusterSpec::accelerator_cluster(2);
    let out = render(&spec, &volume, &scene, &cfg);
    assert_eq!(out.image.width(), 16);
    assert_eq!(out.report.breakdown().total(), out.report.runtime());
}

#[test]
fn non_square_image() {
    let volume = Dataset::Plume.volume(16); // 16×16×64 column
    let scene = Scene::orbit(&volume, 10.0, 5.0, TransferFunction::smoke());
    let mut cfg = RenderConfig::test_size(32);
    cfg.image = (32, 96); // tall image for a tall volume
    let spec = ClusterSpec::accelerator_cluster(2);
    let out = render(&spec, &volume, &scene, &cfg);
    assert_eq!(out.image.width(), 32);
    assert_eq!(out.image.height(), 96);
    assert!(out.image.coverage(0.01) > 0.01);
}

#[test]
fn opaque_background_fills_empty_pixels() {
    let volume = Dataset::Supernova.volume(16);
    let scene = Scene::orbit(&volume, 0.0, 0.0, TransferFunction::fire())
        .with_background([0.25, 0.5, 0.75, 1.0]);
    let cfg = RenderConfig::test_size(48);
    let spec = ClusterSpec::accelerator_cluster(1);
    let out = render(&spec, &volume, &scene, &cfg);
    // A corner pixel far from the supernova shows pure background.
    let c = out.image.get(0, 0);
    assert!((c[0] - 0.25).abs() < 1e-5);
    assert!((c[1] - 0.5).abs() < 1e-5);
    assert!((c[2] - 0.75).abs() < 1e-5);
}

#[test]
fn coarse_steps_are_faster_but_similar() {
    let volume = Dataset::Skull.volume(32);
    let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
    let spec = ClusterSpec::accelerator_cluster(2);
    let mut cfg = RenderConfig::test_size(64);
    cfg.step_voxels = 1.0;
    let fine = render(&spec, &volume, &scene, &cfg);
    cfg.step_voxels = 2.0;
    let coarse = render(&spec, &volume, &scene, &cfg);
    // Half the samples → faster simulated frame.
    assert!(coarse.report.runtime() < fine.report.runtime());
    // Opacity correction keeps the images visually close.
    let diff = fine.image.mean_abs_diff(&coarse.image);
    assert!(diff < 0.05, "step-2 image diverged too much: {diff}");
}

#[test]
fn one_brick_per_gpu_configuration() {
    let volume = Dataset::Skull.volume(32);
    let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
    let spec = ClusterSpec::accelerator_cluster(4);
    let mut cfg = RenderConfig::test_size(64);
    cfg.bricks_per_gpu = 1;
    let out = render(&spec, &volume, &scene, &cfg);
    assert!(out.report.bricks >= 4);
    assert!(out.report.job.conserved());
}

#[test]
fn thirty_two_gpus_on_tiny_volume_still_correct() {
    // The paper's "why would one wish to use more resources than necessary"
    // case: extreme overprovisioning must stay correct, just slower.
    let volume = Dataset::Supernova.volume(16);
    let scene = Scene::orbit(&volume, 45.0, 30.0, TransferFunction::fire());
    let mut cfg = RenderConfig::test_size(48);
    cfg.early_term = 1.1;
    let reference = {
        let spec = ClusterSpec::accelerator_cluster(1);
        render(&spec, &volume, &scene, &cfg)
    };
    let spec = ClusterSpec::accelerator_cluster(32);
    let overkill = render(&spec, &volume, &scene, &cfg);
    let diff = reference.image.max_abs_diff(&overkill.image);
    assert!(diff < 2e-4);
    assert!(overkill.report.runtime().nanos() > reference.report.runtime().nanos() / 32);
}

#[test]
fn assignment_policy_changes_schedule_not_pixels() {
    use mgpu_mapreduce::Assignment;
    let volume = Dataset::Skull.volume(32);
    let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
    let spec = ClusterSpec::accelerator_cluster(4);
    let mut cfg = RenderConfig::test_size(64);
    let mut images = Vec::new();
    for a in [
        Assignment::RoundRobin,
        Assignment::Blocked,
        Assignment::Strided { stride: 3 },
    ] {
        cfg.assignment = a;
        let out = render(&spec, &volume, &scene, &cfg);
        assert!(out.report.job.conserved());
        images.push(out.image);
    }
    assert_eq!(images[0], images[1]);
    assert_eq!(images[0], images[2]);
}

#[test]
fn blocked_assignment_feeds_the_combiner() {
    use mgpu_mapreduce::Assignment;
    // The §3.1 combiner finding depends on brick placement: with blocked
    // assignment one mapper owns depth-adjacent bricks, so the combiner can
    // actually merge — with round-robin it rarely can.
    let volume = Dataset::Skull.volume(32);
    // Axis-aligned view: rays cross bricks in x-order, which blocked
    // assignment groups on one GPU.
    let scene = Scene::orbit(&volume, 0.0, 0.0, TransferFunction::bone());
    let spec = ClusterSpec::accelerator_cluster(2);
    let mut cfg = RenderConfig::test_size(64);
    cfg.combiner = true;
    cfg.early_term = 1.1;

    cfg.assignment = Assignment::Blocked;
    let blocked = render(&spec, &volume, &scene, &cfg);
    cfg.assignment = Assignment::RoundRobin;
    let rr = render(&spec, &volume, &scene, &cfg);
    assert!(
        blocked.report.job.combined_away >= rr.report.job.combined_away,
        "blocked {} vs round-robin {}",
        blocked.report.job.combined_away,
        rr.report.job.combined_away
    );
}
