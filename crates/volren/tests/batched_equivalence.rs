//! Property test pinning the batched [`BlockKernel`] ray caster to the
//! retained scalar [`Kernel`] path: for random scenes, step sizes,
//! early-termination thresholds, footprint offsets and launch shapes
//! (including padding threads past the image edge), both paths must produce
//! bit-identical `(Key, Fragment)` columns and identical launch statistics.
//!
//! This is the contract the module docs of `mgpu_volren::kernel` promise —
//! the batched path hoists invariants and uses the borrowing samplers, but
//! executes the same float operations in the same order.

use proptest::prelude::*;

use mgpu_gpu::{launch, launch_blocks, LaunchConfig, Texture3D};
use mgpu_mapreduce::SENTINEL_KEY;
use mgpu_voldata::Dataset;
use mgpu_volren::camera::Scene;
use mgpu_volren::kernel::RayCastKernel;
use mgpu_volren::math::vec3;
use mgpu_volren::TransferFunction;

/// Deterministic pseudo-random voxel field (with a one-voxel ghost shell,
/// like staged bricks) so rays cross both the sampler's interior fast path
/// and its clamped border path.
fn noise_texture(dims: [usize; 3], seed: u64) -> Texture3D {
    let n = dims[0] * dims[1] * dims[2];
    let mut state = seed | 1;
    let data = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) as f32 / (1u64 << 24) as f32
        })
        .collect();
    Texture3D::new(dims, data)
}

/// Deterministic anchor: a full-image launch where the orbit camera frames
/// the volume, so a substantial number of rays *must* hit — guarding against
/// the property trivially passing on all-sentinel outputs.
#[test]
fn full_image_launch_agrees_and_actually_hits() {
    let v = Dataset::Skull.volume(12);
    let scene = Scene::orbit(&v, 30.0, 20.0, TransferFunction::grayscale());
    let lut = scene.transfer.bake();
    let tex = noise_texture([14, 14, 14], 42);
    let kernel = RayCastKernel {
        camera: &scene.camera,
        lut: &lut,
        texture: &tex,
        store_origin: vec3(-1.0, -1.0, -1.0),
        core_lo: vec3(0.0, 0.0, 0.0),
        core_hi: vec3(12.0, 12.0, 12.0),
        image: (96, 96),
        offset: (0, 0),
        step: 0.7,
        early_term: 0.97,
    };
    let config = LaunchConfig::cover(96, 96);
    let scalar = launch(&kernel, config, 1);
    let batched = launch_blocks(&kernel, config, 2);
    assert_eq!(scalar.stats, batched.stats);
    let mut hits = 0usize;
    for (i, (k, f)) in scalar.outputs.iter().enumerate() {
        assert_eq!(*k, batched.keys[i]);
        if *k != SENTINEL_KEY {
            hits += 1;
            assert_eq!(f, &batched.values[i]);
        }
    }
    assert!(hits > 500, "only {hits} hits on a framed volume");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_path_bit_identical_to_scalar(
        az in 0f32..360.0,
        el in -60f32..60.0,
        step_raw in 0.25f32..2.5,
        unit_step in 0u32..2,
        et_raw in 0.3f32..1.0,
        et_disabled in 0u32..2,
        image_w in 16u32..96,
        image_h in 16u32..96,
        off_x in 0u32..48,
        off_y in 0u32..48,
        // Launch sizes that are not multiples of 16 exercise padding
        // threads; sizes larger than the remaining image exercise
        // whole-padding rows and columns.
        launch_w in 1u32..70,
        launch_h in 1u32..70,
        parallelism in 1usize..4,
        seed in 0u64..1_000_000_000_000,
    ) {
        // Mix exact unit steps (no opacity correction) with fractional ones,
        // and ET-disabled thresholds (≥ 1.0) with aggressive ones.
        let step = if unit_step == 0 { 1.0 } else { step_raw };
        let early_term = if et_disabled == 0 { 1.1 } else { et_raw };
        let v = Dataset::Skull.volume(12);
        let scene = Scene::orbit(&v, az, el, TransferFunction::grayscale());
        let lut = scene.transfer.bake();
        let tex = noise_texture([14, 14, 14], seed);
        let kernel = RayCastKernel {
            camera: &scene.camera,
            lut: &lut,
            texture: &tex,
            store_origin: vec3(-1.0, -1.0, -1.0),
            core_lo: vec3(0.0, 0.0, 0.0),
            core_hi: vec3(12.0, 12.0, 12.0),
            image: (image_w, image_h),
            offset: (off_x.min(image_w - 1), off_y.min(image_h - 1)),
            step,
            early_term,
        };

        let config = LaunchConfig::cover(launch_w, launch_h);
        let scalar = launch(&kernel, config, 1);
        let batched = launch_blocks(&kernel, config, parallelism);

        prop_assert_eq!(scalar.outputs.len(), batched.keys.len());
        let mut hits = 0usize;
        for (i, (k, f)) in scalar.outputs.iter().enumerate() {
            prop_assert_eq!(*k, batched.keys[i], "key mismatch at lane {}", i);
            if *k != SENTINEL_KEY {
                hits += 1;
                let bf = &batched.values[i];
                for c in 0..4 {
                    prop_assert_eq!(
                        f.color[c].to_bits(),
                        bf.color[c].to_bits(),
                        "color[{}] mismatch at lane {}",
                        c,
                        i
                    );
                }
                prop_assert_eq!(f.depth.to_bits(), bf.depth.to_bits());
                prop_assert_eq!(f.exit.to_bits(), bf.exit.to_bits());
            }
        }
        // Warp divergence accounting must agree too: the DES cost model is
        // driven by these stats, so the batched path may not drift.
        prop_assert_eq!(scalar.stats, batched.stats);
        // Sanity: at least some cases in the suite have real hits (the orbit
        // camera frames the volume, so a launch at the image center does).
        if kernel.offset == (0, 0) && launch_w >= image_w && launch_h >= image_h {
            prop_assert!(hits > 0, "full-image launch found no fragments");
        }
    }
}
