//! Cluster topology: nodes, GPUs, and which hardware unit serves which task.
//!
//! The paper's testbed is the NCSA Accelerator Cluster: quad-core nodes with
//! 8 GB RAM, Tesla S1070-class units presenting **four logical GPUs per
//! node**, connected by QDR InfiniBand. One MapReduce process per GPU: the
//! process owns the GPU (mapping), a host core (partition / sort / reduce —
//! the paper composites on the CPU), a share of the node's disk and NIC.

use mgpu_gpu::DeviceProps;
use mgpu_sim::{LinkModel, ResourceId, Trace};
use serde::{Deserialize, Serialize};

use crate::network::NetworkModel;

/// Index of a GPU (= of a MapReduce process) in the cluster, 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GpuId(pub u32);

/// Index of a node in the cluster, 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A modeled cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    pub gpus: u32,
    pub gpus_per_node: u32,
    pub device: DeviceProps,
    pub network: NetworkModel,
    /// Node-local disk (brick loads).
    pub disk: LinkModel,
}

impl ClusterSpec {
    /// The paper's Accelerator-Cluster configuration with `gpus` GPUs:
    /// 4 logical GPUs per node, C1060-class devices, QDR InfiniBand, and a
    /// disk calibrated to the paper's "64³ brick ≈ 20 ms" anchor.
    pub fn accelerator_cluster(gpus: u32) -> ClusterSpec {
        assert!(gpus >= 1, "a cluster needs at least one GPU");
        ClusterSpec {
            gpus,
            gpus_per_node: 4,
            device: DeviceProps::tesla_c1060(),
            network: NetworkModel::qdr_infiniband_2010(),
            disk: LinkModel::new(8e-3, 85.0 * (1u64 << 20) as f64),
        }
    }

    /// Same cluster with a custom GPU count per node (scaling ablations).
    pub fn with_gpus_per_node(mut self, per_node: u32) -> ClusterSpec {
        assert!(per_node >= 1);
        self.gpus_per_node = per_node;
        self
    }

    pub fn nodes(&self) -> u32 {
        self.gpus.div_ceil(self.gpus_per_node)
    }

    pub fn node_of(&self, gpu: GpuId) -> NodeId {
        assert!(gpu.0 < self.gpus, "gpu {gpu:?} out of range");
        NodeId(gpu.0 / self.gpus_per_node)
    }

    pub fn same_node(&self, a: GpuId, b: GpuId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    pub fn gpu_ids(&self) -> impl Iterator<Item = GpuId> {
        (0..self.gpus).map(GpuId)
    }

    /// Aggregate VRAM across the cluster — decides in-core vs out-of-core.
    pub fn total_vram_bytes(&self) -> u64 {
        self.gpus as u64 * self.device.vram_bytes
    }
}

/// The DES resources standing for the cluster's hardware units.
///
/// * one compute resource per GPU;
/// * one PCIe link per GPU (the S1070 gives each logical GPU its own PCIe
///   connection through the host interface cards);
/// * one host core per GPU process (quad-core nodes, 4 processes per node);
/// * one disk and one NIC (each direction) per node — these are the shared,
///   contended resources.
#[derive(Debug, Clone)]
pub struct ResourceMap {
    pub gpu: Vec<ResourceId>,
    pub pcie: Vec<ResourceId>,
    pub core: Vec<ResourceId>,
    pub disk: Vec<ResourceId>,
    pub nic_out: Vec<ResourceId>,
    pub nic_in: Vec<ResourceId>,
}

impl ResourceMap {
    pub fn build(spec: &ClusterSpec, trace: &mut Trace) -> ResourceMap {
        let g = spec.gpus as usize;
        let n = spec.nodes() as usize;
        ResourceMap {
            gpu: trace.add_resources(g),
            pcie: trace.add_resources(g),
            core: trace.add_resources(g),
            disk: trace.add_resources(n),
            nic_out: trace.add_resources(n),
            nic_in: trace.add_resources(n),
        }
    }

    pub fn gpu_r(&self, id: GpuId) -> ResourceId {
        self.gpu[id.0 as usize]
    }

    pub fn pcie_r(&self, id: GpuId) -> ResourceId {
        self.pcie[id.0 as usize]
    }

    pub fn core_r(&self, id: GpuId) -> ResourceId {
        self.core[id.0 as usize]
    }

    pub fn disk_r(&self, spec: &ClusterSpec, gpu: GpuId) -> ResourceId {
        self.disk[spec.node_of(gpu).0 as usize]
    }

    pub fn nic_out_r(&self, spec: &ClusterSpec, gpu: GpuId) -> ResourceId {
        self.nic_out[spec.node_of(gpu).0 as usize]
    }

    pub fn nic_in_r(&self, spec: &ClusterSpec, gpu: GpuId) -> ResourceId {
        self.nic_in[spec.node_of(gpu).0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_mapping_four_gpus_per_node() {
        let c = ClusterSpec::accelerator_cluster(16);
        assert_eq!(c.nodes(), 4);
        assert_eq!(c.node_of(GpuId(0)), NodeId(0));
        assert_eq!(c.node_of(GpuId(3)), NodeId(0));
        assert_eq!(c.node_of(GpuId(4)), NodeId(1));
        assert_eq!(c.node_of(GpuId(15)), NodeId(3));
        assert!(c.same_node(GpuId(4), GpuId(7)));
        assert!(!c.same_node(GpuId(3), GpuId(4)));
    }

    #[test]
    fn partial_nodes_round_up() {
        let c = ClusterSpec::accelerator_cluster(6);
        assert_eq!(c.nodes(), 2);
        // The paper's footnote config: 16 GPUs on 4 nodes.
        assert_eq!(ClusterSpec::accelerator_cluster(16).nodes(), 4);
    }

    #[test]
    fn total_vram_gates_in_core() {
        let c = ClusterSpec::accelerator_cluster(8);
        // 8 × 4 GiB = 32 GiB: a 4 GiB 1024³ volume fits in-core.
        assert!(c.total_vram_bytes() >= 4 << 30);
    }

    #[test]
    fn resource_map_counts() {
        let c = ClusterSpec::accelerator_cluster(8);
        let mut tr = Trace::new();
        let rm = ResourceMap::build(&c, &mut tr);
        assert_eq!(rm.gpu.len(), 8);
        assert_eq!(rm.disk.len(), 2);
        assert_eq!(tr.num_resources(), 8 * 3 + 2 * 3);
        // GPUs 0 and 1 share a disk; 0 and 4 do not.
        assert_eq!(rm.disk_r(&c, GpuId(0)), rm.disk_r(&c, GpuId(1)));
        assert_ne!(rm.disk_r(&c, GpuId(0)), rm.disk_r(&c, GpuId(4)));
    }

    #[test]
    fn disk_anchor_20ms_for_64cubed() {
        let c = ClusterSpec::accelerator_cluster(1);
        let t = c.disk.time(64 * 64 * 64 * 4).as_millis_f64();
        assert!((t - 20.0).abs() < 1.5, "{t} ms");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_of_checks_range() {
        let c = ClusterSpec::accelerator_cluster(4);
        c.node_of(GpuId(4));
    }
}
