//! # mgpu-cluster — the modeled GPU cluster
//!
//! Topology and interconnect models for the paper's testbed (NCSA
//! Accelerator Cluster: 4 logical GPUs per quad-core node, node-local disks,
//! QDR InfiniBand):
//!
//! * [`topology`] — [`ClusterSpec`], GPU↔node mapping, and the
//!   [`ResourceMap`] that stands the hardware up as DES resources;
//! * [`network`] — the 2010-era MPI-over-InfiniBand cost model with
//!   per-message software overhead and intra-node shared-memory routing.

#![forbid(unsafe_code)]

pub mod network;
pub mod topology;

pub use network::{route, NetworkModel, Route};
pub use topology::{ClusterSpec, GpuId, NodeId, ResourceMap};
