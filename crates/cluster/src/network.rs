//! Interconnect model: QDR InfiniBand as driven by a 2010-era MPI stack with
//! GPU buffers in the loop.
//!
//! The paper observes that "the network transmission time is several orders
//! of magnitude higher than the GPU-to-CPU transfer time of those ray
//! fragments" (§3) — i.e. the *effective* fragment-exchange throughput is far
//! below the QDR line rate of 4 GB/s. That gap is per-message software
//! overhead: unpinned staging buffers, MPI matching, and the synchronous
//! 3-D-texture copies the paper was forced into. The model therefore charges
//! a large per-message overhead plus a modest effective bandwidth, and
//! routes intra-node traffic through shared memory instead of the NIC.

use mgpu_sim::{LinkModel, SimDuration};
use serde::{Deserialize, Serialize};

use crate::topology::{ClusterSpec, GpuId};

/// How a fragment batch travels from a mapper process to a reducer process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Same process (mapper is its own reducer): no transfer at all.
    SameProcess,
    /// Different process, same node: shared-memory copy.
    IntraNode,
    /// Different node: NIC → wire → NIC.
    InterNode,
}

/// Interconnect cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Software cost paid by the sender per message (MPI send path, staging).
    pub send_overhead_s: f64,
    /// Software cost paid by the receiver per message.
    pub recv_overhead_s: f64,
    /// Effective sustained point-to-point bandwidth, bytes/s.
    pub bytes_per_s: f64,
    /// Wire/switch latency between send completion and receive start.
    pub wire_latency_s: f64,
    /// Intra-node (shared-memory) handoff between processes.
    pub intra_node: LinkModel,
}

impl NetworkModel {
    /// QDR InfiniBand (4× QDR ≈ 4 GB/s line rate) as achieved by a 2010 MPI
    /// stack moving GPU-originated, unpinned buffers: ~1.2 GB/s effective
    /// stream bandwidth and ~4 ms of per-message software overhead. These
    /// constants, combined with per-(brick, reducer) message counts, place
    /// the communication/computation crossover near 8 GPUs for ≤512³ volumes
    /// — the paper's headline shape (§5, Figure 3).
    pub fn qdr_infiniband_2010() -> NetworkModel {
        NetworkModel {
            send_overhead_s: 4.0e-3,
            recv_overhead_s: 0.8e-3,
            bytes_per_s: 1.2e9,
            wire_latency_s: 5e-6,
            intra_node: LinkModel::new(25e-6, 4.0e9),
        }
    }

    /// An idealized zero-software-overhead QDR fabric (ablation: how much of
    /// the paper's communication wall is software, not wire).
    pub fn ideal_qdr() -> NetworkModel {
        NetworkModel {
            send_overhead_s: 2e-6,
            recv_overhead_s: 2e-6,
            bytes_per_s: 4.0e9,
            wire_latency_s: 2e-6,
            intra_node: LinkModel::new(5e-6, 8.0e9),
        }
    }

    /// Sender-side NIC occupancy for one message.
    pub fn send_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.send_overhead_s + bytes as f64 / self.bytes_per_s)
    }

    /// Receiver-side NIC occupancy for one message.
    pub fn recv_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.recv_overhead_s + bytes as f64 / self.bytes_per_s)
    }

    pub fn wire_latency(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.wire_latency_s)
    }

    /// Intra-node handoff time for one batch.
    pub fn intra_node_time(&self, bytes: u64) -> SimDuration {
        self.intra_node.time(bytes)
    }
}

/// Classify the route between two GPU processes.
pub fn route(spec: &ClusterSpec, from: GpuId, to: GpuId) -> Route {
    if from == to {
        Route::SameProcess
    } else if spec.same_node(from, to) {
        Route::IntraNode
    } else {
        Route::InterNode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes() {
        let c = ClusterSpec::accelerator_cluster(8);
        assert_eq!(route(&c, GpuId(2), GpuId(2)), Route::SameProcess);
        assert_eq!(route(&c, GpuId(0), GpuId(3)), Route::IntraNode);
        assert_eq!(route(&c, GpuId(0), GpuId(4)), Route::InterNode);
    }

    #[test]
    fn network_time_dominated_by_overhead_for_small_messages() {
        let n = NetworkModel::qdr_infiniband_2010();
        let small = n.send_time(1024).as_millis_f64();
        assert!((4.0..4.1).contains(&small), "small send {small} ms");
        // The paper's observation: network ≫ PCIe for the same bytes.
        let pcie = mgpu_gpu::DeviceProps::tesla_c1060().d2h_time(1024);
        assert!(n.send_time(1024).nanos() > 20 * pcie.nanos());
    }

    #[test]
    fn large_messages_approach_effective_bandwidth() {
        let n = NetworkModel::qdr_infiniband_2010();
        let t = n.send_time(120_000_000).as_secs_f64(); // 120 MB
        let eff = 120_000_000.0 / t;
        assert!(eff > 1.1e9 && eff < 1.2e9, "effective bw {eff}");
    }

    #[test]
    fn intra_node_much_cheaper_than_inter_node() {
        let n = NetworkModel::qdr_infiniband_2010();
        let bytes = 256 * 1024;
        assert!(n.intra_node_time(bytes).nanos() * 10 < n.send_time(bytes).nanos());
    }

    #[test]
    fn ideal_fabric_is_faster() {
        let real = NetworkModel::qdr_infiniband_2010();
        let ideal = NetworkModel::ideal_qdr();
        for bytes in [1u64 << 10, 1 << 20, 1 << 26] {
            assert!(ideal.send_time(bytes) < real.send_time(bytes));
        }
    }
}
