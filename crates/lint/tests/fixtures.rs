//! Red/green fixture self-tests: every lint must fire on a minimal
//! workspace that violates its invariant (red) and stay quiet on the
//! corrected twin (green). Each test drives one lint directly so a
//! fixture minimal for lint A doesn't drown in findings from lint B.

use mgpu_lint::lints::{atomics, decode, locks, metrics, unsafety, wire};
use mgpu_lint::{Diagnostics, Finding, Workspace};

type Check = fn(&Workspace, &mut Diagnostics);

fn run(check: Check, files: Vec<(&str, &str)>) -> Vec<Finding> {
    let ws = Workspace::from_files(files);
    let mut diag = Diagnostics::new();
    check(&ws, &mut diag);
    diag.findings
}

fn assert_fires(findings: &[Finding], lint: &str, needle: &str) {
    assert!(
        findings
            .iter()
            .any(|f| f.lint == lint && f.message.contains(needle)),
        "expected a {lint} finding containing {needle:?}, got: {findings:#?}"
    );
}

fn assert_quiet(findings: &[Finding]) {
    assert!(
        findings.is_empty(),
        "expected no findings, got: {findings:#?}"
    );
}

// --- wire-conformance ---------------------------------------------------

const WIRE_OK: &str = r#"
pub mod opcode {
    pub const PING: u8 = 0x01;
    pub const PONG: u8 = 0x81;
}
"#;

const SERVER_OK: &str = r#"
fn dispatch(op: u8, conn: &mut Conn) {
    match op {
        opcode::PING => conn.send(frame_bytes(opcode::PONG, &[])),
        _ => {}
    }
}
"#;

const CLIENT_OK: &str = r#"
fn roundtrip() {
    send(opcode::PING);
    // lint: wire-ignore(PONG) replies are matched by request id, not opcode
}
"#;

const README_OK: &str = "wire table: `PING` (0x01) is answered by `PONG` (0x81).";

#[test]
fn wire_green_conforming_protocol_is_quiet() {
    let findings = run(
        wire::check,
        vec![
            ("crates/net/src/wire.rs", WIRE_OK),
            ("crates/net/src/server.rs", SERVER_OK),
            ("crates/net/src/client.rs", CLIENT_OK),
            ("README.md", README_OK),
        ],
    );
    assert_quiet(&findings);
}

#[test]
fn wire_red_duplicate_value_fires() {
    let wire_dup = r#"
pub mod opcode {
    pub const PING: u8 = 0x01;
    pub const PONG: u8 = 0x01;
}
"#;
    let findings = run(
        wire::check,
        vec![
            ("crates/net/src/wire.rs", wire_dup),
            ("crates/net/src/server.rs", SERVER_OK),
            ("crates/net/src/client.rs", CLIENT_OK),
            ("README.md", README_OK),
        ],
    );
    assert_fires(&findings, wire::NAME, "reuses value");
}

#[test]
fn wire_red_request_valued_reply_fires() {
    // The server *sends* REPLY, but its value sits in request space.
    let wire_bad = r#"
pub mod opcode {
    pub const PING: u8 = 0x01;
    pub const PONG: u8 = 0x02;
}
"#;
    let findings = run(
        wire::check,
        vec![
            ("crates/net/src/wire.rs", wire_bad),
            ("crates/net/src/server.rs", SERVER_OK),
            ("crates/net/src/client.rs", CLIENT_OK),
            ("README.md", README_OK),
        ],
    );
    assert_fires(&findings, wire::NAME, "request value");
}

#[test]
fn wire_red_undocumented_opcode_fires() {
    let findings = run(
        wire::check,
        vec![
            ("crates/net/src/wire.rs", WIRE_OK),
            ("crates/net/src/server.rs", SERVER_OK),
            ("crates/net/src/client.rs", CLIENT_OK),
            (
                "README.md",
                "wire table: only `PING` (0x01) is described here.",
            ),
        ],
    );
    assert_fires(&findings, wire::NAME, "not documented in the README");
}

#[test]
fn wire_red_unhandled_in_client_fires() {
    let client_partial = "fn roundtrip() { send(opcode::PING); }\n";
    let findings = run(
        wire::check,
        vec![
            ("crates/net/src/wire.rs", WIRE_OK),
            ("crates/net/src/server.rs", SERVER_OK),
            ("crates/net/src/client.rs", client_partial),
            ("README.md", README_OK),
        ],
    );
    assert_fires(&findings, wire::NAME, "never handled in client.rs");
}

// --- metric-registry ----------------------------------------------------

/// The exact blessed header `blessed_text` emits, so green fixtures can
/// check in a matching `ci/metrics.txt`.
const BLESSED_HEADER: &str =
    "# Blessed metric namespace: `instrument name`, sorted. Regenerate with\n\
# `cargo run -p mgpu-lint -- --update` when metrics are added or removed.\n";

#[test]
fn metrics_green_conforming_names_are_quiet() {
    let blessed = format!("{BLESSED_HEADER}counter net.frames_in\n");
    let findings = run(
        metrics::check,
        vec![
            (
                "crates/net/src/server.rs",
                "fn wire_in(reg: &Registry) { reg.counter(\"net.frames_in\").add(1); }\n",
            ),
            ("ci/metrics.txt", &blessed),
        ],
    );
    assert_quiet(&findings);
}

#[test]
fn metrics_red_bad_name_fires() {
    let blessed = format!("{BLESSED_HEADER}counter net.FramesIn\n");
    let findings = run(
        metrics::check,
        vec![
            (
                "crates/net/src/server.rs",
                "fn wire_in(reg: &Registry) { reg.counter(\"net.FramesIn\").add(1); }\n",
            ),
            ("ci/metrics.txt", &blessed),
        ],
    );
    assert_fires(&findings, metrics::NAME, "snake_case");
}

#[test]
fn metrics_red_two_instrument_types_fires() {
    let blessed = format!("{BLESSED_HEADER}counter net.frames_in\n");
    let findings = run(
        metrics::check,
        vec![
            (
                "crates/net/src/server.rs",
                "fn a(reg: &Registry) { reg.counter(\"net.frames_in\"); }\n",
            ),
            (
                "crates/net/src/heat.rs",
                "fn b(reg: &Registry) { reg.histogram(\"net.frames_in\"); }\n",
            ),
            ("ci/metrics.txt", &blessed),
        ],
    );
    assert_fires(&findings, metrics::NAME, "one name, one instrument type");
}

#[test]
fn metrics_red_dashboard_reads_unregistered_fires() {
    let blessed = format!("{BLESSED_HEADER}counter net.frames_in\n");
    let findings = run(
        metrics::check,
        vec![
            (
                "crates/net/src/server.rs",
                "fn a(reg: &Registry) { reg.counter(\"net.frames_in\"); }\n",
            ),
            (
                "crates/bench/src/bin/obs_top.rs",
                "fn draw(s: &Snapshot) { row(s.counters.get(\"net.frames_ni\")); }\n",
            ),
            ("ci/metrics.txt", &blessed),
        ],
    );
    assert_fires(&findings, metrics::NAME, "nothing registers it");
}

#[test]
fn metrics_red_unblessed_registration_fires() {
    let findings = run(
        metrics::check,
        vec![
            (
                "crates/net/src/server.rs",
                "fn a(reg: &Registry) { reg.counter(\"net.frames_in\"); }\n",
            ),
            ("ci/metrics.txt", BLESSED_HEADER),
        ],
    );
    assert_fires(&findings, metrics::NAME, "registered but not blessed");
}

#[test]
fn metrics_names_module_consts_resolve() {
    // A registration through `names::CONST` is still visible.
    let blessed = format!("{BLESSED_HEADER}counter net.frames_in\n");
    let findings = run(
        metrics::check,
        vec![
            (
                "crates/obs/src/names.rs",
                "pub const NET_FRAMES_IN: &str = \"net.frames_in\";\n",
            ),
            (
                "crates/net/src/server.rs",
                "fn a(reg: &Registry) { reg.counter(names::NET_FRAMES_IN); }\n",
            ),
            ("ci/metrics.txt", &blessed),
        ],
    );
    assert_quiet(&findings);
}

// --- panic-free-decode --------------------------------------------------

#[test]
fn decode_green_typed_errors_are_quiet() {
    let findings = run(
        decode::check,
        vec![(
            "crates/net/src/wire.rs",
            "fn decode_ping(p: &[u8]) -> Result<u8, WireError> {\n\
                 p.first().copied().ok_or(WireError::Truncated)\n\
             }\n",
        )],
    );
    assert_quiet(&findings);
}

#[test]
fn decode_red_unwrap_fires() {
    let findings = run(
        decode::check,
        vec![(
            "crates/net/src/wire.rs",
            "fn decode_ping(p: &[u8]) -> u8 { p.first().copied().unwrap() }\n",
        )],
    );
    assert_fires(&findings, decode::NAME, "`unwrap`");
}

#[test]
fn decode_red_direct_indexing_fires() {
    let findings = run(
        decode::check,
        vec![(
            "crates/net/src/wire.rs",
            "fn decode_ping(p: &[u8]) -> u8 { p[0] }\n",
        )],
    );
    assert_fires(&findings, decode::NAME, "direct slice indexing");
}

#[test]
fn decode_non_decode_fns_are_out_of_scope() {
    // `encode_*` may index freely — lengths are under our control there.
    let findings = run(
        decode::check,
        vec![(
            "crates/net/src/wire.rs",
            "fn encode_ping(out: &mut [u8]) { out[0] = 1; }\n",
        )],
    );
    assert_quiet(&findings);
}

// --- lock-order ---------------------------------------------------------

#[test]
fn locks_green_consistent_order_is_quiet() {
    let findings = run(
        locks::check,
        vec![(
            "crates/serve/src/queue.rs",
            "fn a(&self) { let g = self.jobs.lock().unwrap(); let h = self.stats.lock().unwrap(); }\n\
             fn b(&self) { let g = self.jobs.lock().unwrap(); let h = self.stats.lock().unwrap(); }\n",
        )],
    );
    assert_quiet(&findings);
}

#[test]
fn locks_red_inverted_order_fires() {
    let findings = run(
        locks::check,
        vec![(
            "crates/serve/src/queue.rs",
            "fn a(&self) { let g = self.jobs.lock().unwrap(); let h = self.stats.lock().unwrap(); }\n\
             fn b(&self) { let g = self.stats.lock().unwrap(); let h = self.jobs.lock().unwrap(); }\n",
        )],
    );
    assert_fires(&findings, locks::NAME, "cyclic lock order");
}

#[test]
fn locks_dropped_guard_breaks_the_edge() {
    // `drop(g)` releases jobs before stats is taken: no held-while edge,
    // so the inverted function cannot complete a cycle.
    let findings = run(
        locks::check,
        vec![(
            "crates/serve/src/queue.rs",
            "fn a(&self) { let g = self.jobs.lock().unwrap(); drop(g); let h = self.stats.lock().unwrap(); }\n\
             fn b(&self) { let g = self.stats.lock().unwrap(); let h = self.jobs.lock().unwrap(); }\n",
        )],
    );
    assert_quiet(&findings);
}

// --- atomic-ordering ----------------------------------------------------

#[test]
fn atomics_green_justified_seqcst_is_quiet() {
    let findings = run(
        atomics::check,
        vec![(
            "crates/net/src/server.rs",
            "fn stop(&self) {\n\
                 // SeqCst: the shutdown flag orders against the drain flag.\n\
                 self.shutdown.store(true, Ordering::SeqCst);\n\
             }\n",
        )],
    );
    assert_quiet(&findings);
}

#[test]
fn atomics_red_bare_seqcst_fires() {
    let findings = run(
        atomics::check,
        vec![(
            "crates/net/src/server.rs",
            "fn stop(&self) { self.shutdown.store(true, Ordering::SeqCst); }\n",
        )],
    );
    assert_fires(&findings, atomics::NAME, "justification comment");
}

#[test]
fn atomics_relaxed_needs_no_comment() {
    let findings = run(
        atomics::check,
        vec![(
            "crates/obs/src/metrics.rs",
            "fn add(&self, n: u64) { self.value.fetch_add(n, Ordering::Relaxed); }\n",
        )],
    );
    assert_quiet(&findings);
}

// --- unsafe-hygiene -----------------------------------------------------

#[test]
fn unsafety_green_documented_and_fenced_is_quiet() {
    let findings = run(
        unsafety::check,
        vec![
            (
                "crates/gpu/src/texture.rs",
                "fn fetch(&self, i: usize) -> f32 {\n\
                     // SAFETY: callers clamp i to texels.len() - 1.\n\
                     unsafe { *self.texels.get_unchecked(i) }\n\
                 }\n",
            ),
            ("crates/gpu/src/lib.rs", "pub mod texture;\n"),
            (
                "crates/obs/src/lib.rs",
                "#![forbid(unsafe_code)]\npub mod metrics;\n",
            ),
        ],
    );
    assert_quiet(&findings);
}

#[test]
fn unsafety_red_undocumented_unsafe_fires() {
    let findings = run(
        unsafety::check,
        vec![(
            "crates/gpu/src/texture.rs",
            "fn fetch(&self, i: usize) -> f32 { unsafe { *self.texels.get_unchecked(i) } }\n",
        )],
    );
    assert_fires(&findings, unsafety::NAME, "SAFETY:");
}

#[test]
fn unsafety_red_missing_forbid_fires() {
    let findings = run(
        unsafety::check,
        vec![("crates/obs/src/lib.rs", "pub mod metrics;\n")],
    );
    assert_fires(&findings, unsafety::NAME, "forbid(unsafe_code)");
}

// --- suppression --------------------------------------------------------

#[test]
fn allow_comment_suppresses_and_is_counted() {
    let ws = Workspace::from_files(vec![(
        "crates/net/src/server.rs",
        "fn stop(&self) {\n\
             // lint: allow(atomic-ordering) legacy site, audited separately\n\
             self.shutdown.store(true, Ordering::SeqCst);\n\
         }\n",
    )]);
    let mut diag = Diagnostics::new();
    atomics::check(&ws, &mut diag);
    assert!(diag.findings.is_empty(), "allow must suppress the finding");
    assert_eq!(diag.suppressed, 1, "suppressions stay visible in the count");
}
