//! A comment/string/char/raw-string-aware Rust lexer.
//!
//! `mgpu-lint` cannot use `syn` (the build is offline), and it does not
//! need to: every project invariant it checks is visible at the token
//! level, *provided* comments, string literals, char literals and raw
//! strings are recognized — a `"counter(\"x\")"` inside a string or a
//! `.lock()` inside a comment must never look like code. This module is
//! that provision: a hand-rolled scanner that turns a `.rs` file into a
//! stream of [`Token`]s plus a parallel list of [`Comment`]s, each tagged
//! with 1-based line numbers.
//!
//! The lexer is deliberately forgiving — an unterminated literal consumes
//! to end of file rather than erroring — because lint input is whatever
//! the tree contains, including half-written code.

/// One lexed token. Comments are *not* tokens; they land in the
/// side-channel [`Comment`] list so lints can correlate them with nearby
/// tokens by line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unsafe`, `frame_bytes`, ...).
    Ident(String),
    /// A lifetime such as `'a` or `'static` (without the quote).
    Lifetime(String),
    /// String literal content between the quotes, escapes left verbatim.
    /// Covers `"…"`, `b"…"`, `c"…"`, `r"…"`, `r#"…"#` and the `br`/`cr`
    /// forms.
    Str(String),
    /// A character literal such as `'x'` or `'\n'` (content not kept —
    /// no lint needs it, only the correct skip).
    Char,
    /// Numeric literal, verbatim (`0x8E`, `1_000`, `2.5e3`).
    Num(String),
    /// A single punctuation character. Multi-char operators arrive as
    /// consecutive tokens (`=>` is `'='`, `'>'`).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A comment (line or block, doc or not) with its line span and body text
/// (delimiters stripped). Block comments may span lines; `end_line` is
/// where the comment closes, which is what "comment on the preceding
/// line" checks care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub start_line: u32,
    pub end_line: u32,
    pub text: String,
}

/// Full lex result for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments. Never fails: malformed input
/// degrades to best-effort tokens, which is the right behavior for a
/// linter that runs on in-progress trees.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.tokens.push(Token { tok, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                '\'' => self.quote(line),
                'r' | 'b' | 'c' if self.literal_prefix() => {}
                c if is_ident_start(c) => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.line;
        let mut text = String::new();
        self.bump();
        self.bump(); // consume `//`
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            start_line: start,
            end_line: start,
            text: text.trim_start_matches(['/', '!']).trim().to_string(),
        });
    }

    /// Block comments nest in Rust: `/* a /* b */ c */` is one comment.
    fn block_comment(&mut self) {
        let start = self.line;
        let mut text = String::new();
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                    text.push_str("/*");
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(_), _) => {
                    let c = self.bump().expect("peeked");
                    text.push(c);
                }
                (None, _) => break, // unterminated: swallow to EOF
            }
        }
        self.out.comments.push(Comment {
            start_line: start,
            end_line: self.line,
            text: text.trim_start_matches(['*', '!']).trim().to_string(),
        });
    }

    /// A cooked string literal starting at the opening `"`.
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    // Keep the escape verbatim; lints compare names, and
                    // metric/opcode names never contain escapes.
                    text.push(c);
                    self.bump();
                    if let Some(next) = self.bump() {
                        text.push(next);
                    }
                }
                '"' => {
                    self.bump();
                    break;
                }
                _ => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push(Tok::Str(text), line);
    }

    /// Raw string body after the prefix: `r`, any number of `#`, then `"`.
    /// Closes at `"` followed by the same number of `#`.
    fn raw_string(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            // `r#foo` is a raw identifier, not a string. Re-lex the `#`s
            // as punctuation and fall through to the identifier path.
            for _ in 0..hashes {
                self.push(Tok::Punct('#'), line);
            }
            if self.peek(0).is_some_and(is_ident_start) {
                self.ident(line);
            }
            return;
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'scan: while let Some(c) = self.peek(0) {
            if c == '"' {
                // Candidate close: needs `hashes` trailing `#`s.
                let mut matched = 0usize;
                while matched < hashes && self.peek(1 + matched) == Some('#') {
                    matched += 1;
                }
                if matched == hashes {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    break 'scan;
                }
            }
            text.push(c);
            self.bump();
        }
        self.push(Tok::Str(text), line);
    }

    /// Dispatch `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, `c"…"` etc.
    /// Returns true if a literal prefix was consumed (the literal body is
    /// pushed by the callee); false means the caller should treat the
    /// char as a plain identifier start.
    fn literal_prefix(&mut self) -> bool {
        let line = self.line;
        let c0 = self.peek(0).expect("caller peeked");
        match (c0, self.peek(1)) {
            ('r', Some('"')) | ('r', Some('#')) => {
                self.bump();
                self.raw_string(line);
                true
            }
            ('b', Some('r')) if matches!(self.peek(2), Some('"') | Some('#')) => {
                self.bump();
                self.bump();
                self.raw_string(line);
                true
            }
            ('b', Some('"')) | ('c', Some('"')) => {
                self.bump();
                self.string(line);
                true
            }
            ('b', Some('\'')) => {
                self.bump();
                self.quote(line);
                true
            }
            _ => false,
        }
    }

    /// A single quote: either a char literal (`'x'`, `'\n'`, `'\u{7f}'`)
    /// or a lifetime (`'a`, `'static`). The discriminator: a lifetime is
    /// `'` + identifier *not* followed by a closing `'`.
    fn quote(&mut self, line: u32) {
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape, then to closing quote.
                self.bump();
                self.bump(); // the escape head (n, u, x, ', ...)
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::Char, line);
            }
            Some(c) if is_ident_start(c) => {
                let mut name = String::new();
                while let Some(c) = self.peek(0) {
                    if is_ident_continue(c) {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                    self.push(Tok::Char, line); // 'a'
                } else {
                    self.push(Tok::Lifetime(name), line); // 'a as in &'a T
                }
            }
            Some('\'') => {
                // `''` — empty/invalid; consume and move on.
                self.bump();
                self.push(Tok::Char, line);
            }
            Some(_) => {
                // Non-identifier char literal: `'+'`, `' '`, `'('`.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(Tok::Char, line);
            }
            None => {}
        }
    }

    fn ident(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Ident(name), line);
    }

    /// Numbers, loosely: enough to read `0x8E` exactly and to not trip
    /// over `1_000u64`, `2.5e-3` or `1.max(2)` (the `.` only joins the
    /// number when a digit follows, so method calls stay punctuation).
    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let continues = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
                || ((c == '+' || c == '-')
                    && matches!(text.chars().last(), Some('e') | Some('E'))
                    && !text.to_ascii_lowercase().starts_with("0x"));
            if !continues {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Tok::Num(text), line);
    }
}

/// Parse a numeric literal as produced by the lexer into a `u64`,
/// honoring `0x`/`0o`/`0b` prefixes, `_` separators and type suffixes
/// (`0x8Eu8` → `0x8E`).
pub fn parse_u64(lit: &str) -> Option<u64> {
    let clean: String = lit.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = match clean.get(..2) {
        Some("0x") | Some("0X") => (16, &clean[2..]),
        Some("0o") | Some("0O") => (8, &clean[2..]),
        Some("0b") | Some("0B") => (2, &clean[2..]),
        _ => (10, clean.as_str()),
    };
    // Strip a trailing type suffix (u8, u16, usize ... or i-forms).
    let digits = digits
        .find(|c: char| !c.is_digit(radix))
        .map_or(digits, |i| &digits[..i]);
    if digits.is_empty() {
        return None;
    }
    u64::from_str_radix(digits, radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn code_in_strings_and_comments_is_not_code() {
        let src = r##"
            // calls .lock() in a comment
            /* and counter("x") in a block */
            let s = "unsafe { panic!() }";
            let r = r#"Ordering::SeqCst"#;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"lock".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"Ordering".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime(_)))
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Char))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn parse_u64_handles_prefixes_and_suffixes() {
        assert_eq!(parse_u64("0x8E"), Some(0x8E));
        assert_eq!(parse_u64("0x8Eu8"), Some(0x8E));
        assert_eq!(parse_u64("1_000"), Some(1000));
        assert_eq!(parse_u64("0b101"), Some(5));
    }
}
