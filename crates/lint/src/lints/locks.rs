//! `lock-order` — no cyclic held-while-acquiring order.
//!
//! The workspace holds ~64 `.lock()` sites across ten files. Deadlock
//! needs a cycle: some thread acquires A then B while another acquires B
//! then A. This lint extracts, per function, the sequence of named lock
//! acquisitions (the field/variable the guard came from), conservatively
//! models guard lifetimes (a `let`-bound guard lives to the end of its
//! block or an explicit `drop(guard)`; a temporary dies at its
//! statement's `;`), builds the held-while-acquiring graph per crate,
//! and fails on any cycle.
//!
//! This is intra-function analysis with name-based lock identity: two
//! locks that share a field name are the same node, and call chains that
//! acquire across functions are invisible. Both approximations are
//! deliberate — they keep the analysis dependency-free and fast, and the
//! repo's locking style (short-lived guards around small critical
//! sections) fits them. A site that locks two same-named locks from
//! *different* objects is exempted automatically (self-edges are
//! skipped); anything else that is provably benign can carry
//! `// lint: allow(lock-order)` with a reason.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostics;
use crate::lexer::{Tok, Token};
use crate::lints::{is_ident, is_punct};
use crate::source::{match_brace, Workspace};

pub const NAME: &str = "lock-order";

/// An `A → B` edge: lock `b` acquired while `a` is held, with the site
/// of the second acquisition.
#[derive(Debug, Clone)]
struct Edge {
    file: usize,
    line: u32,
}

pub fn check(ws: &Workspace, diag: &mut Diagnostics) {
    // crate → (a, b) → example site
    let mut graphs: BTreeMap<&str, BTreeMap<(String, String), Edge>> = BTreeMap::new();
    for (file_idx, file) in ws.files.iter().enumerate() {
        let graph = graphs.entry(file.krate.as_str()).or_default();
        collect_edges(file_idx, &file.tokens, |held, acquired, line| {
            if held != acquired {
                graph
                    .entry((held.to_string(), acquired.to_string()))
                    .or_insert(Edge {
                        file: file_idx,
                        line,
                    });
            }
        });
    }

    for graph in graphs.values() {
        for cycle in find_cycles(graph) {
            // Attribute the finding to the first edge's site; name the
            // full cycle and every example site in the message.
            let first = &graph[&cycle[0]];
            let path: Vec<String> = cycle
                .iter()
                .map(|(a, b)| {
                    let e = &graph[&(a.clone(), b.clone())];
                    format!(
                        "{a} then {b} ({}:{})",
                        ws.files[e.file].rel.display(),
                        e.line
                    )
                })
                .collect();
            diag.report(
                &ws.files[first.file],
                first.line,
                NAME,
                format!(
                    "potential deadlock: cyclic lock order [{}]",
                    path.join(", ")
                ),
            );
        }
    }
}

/// Walk one file's functions and emit (held, acquired, line) pairs.
fn collect_edges(_file_idx: usize, tokens: &[Token], mut edge: impl FnMut(&str, &str, u32)) {
    let mut i = 0;
    while i < tokens.len() {
        if !is_ident(tokens, i, "fn") {
            i += 1;
            continue;
        }
        let Some(open) = (i..tokens.len()).find(|&k| matches!(tokens[k].tok, Tok::Punct('{')))
        else {
            break;
        };
        let close = match_brace(tokens, open);
        scan_body(tokens, open, close, &mut edge);
        // Nested fns/closures inside the body are rescanned as part of
        // this body — acceptable: a closure runs on some thread with the
        // enclosing locks possibly held.
        i = close + 1;
    }
}

#[derive(Debug)]
struct Held {
    name: String,
    depth: i32,
    /// `Some(var)` when `let var = …lock()…;` bound the guard;
    /// `None` → temporary, released at end of statement.
    binding: Option<String>,
}

fn scan_body(tokens: &[Token], open: usize, close: usize, edge: &mut impl FnMut(&str, &str, u32)) {
    let mut depth: i32 = 0;
    let mut held: Vec<Held> = Vec::new();
    let mut k = open;
    while k < close {
        match &tokens[k].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
            }
            Tok::Punct(';') => {
                held.retain(|h| !(h.binding.is_none() && h.depth == depth));
            }
            Tok::Ident(id) if id == "drop" && is_punct(tokens, k + 1, '(') => {
                if let Some(Tok::Ident(var)) = tokens.get(k + 2).map(|t| &t.tok) {
                    if is_punct(tokens, k + 3, ')') {
                        held.retain(|h| h.binding.as_deref() != Some(var.as_str()));
                    }
                }
            }
            Tok::Ident(id)
                if id == "lock"
                    && k >= 2
                    && is_punct(tokens, k - 1, '.')
                    && is_punct(tokens, k + 1, '(')
                    && is_punct(tokens, k + 2, ')') =>
            {
                if let Some(Tok::Ident(lock_name)) = tokens.get(k - 2).map(|t| &t.tok) {
                    let line = tokens[k].line;
                    for h in &held {
                        edge(&h.name, lock_name, line);
                    }
                    held.push(Held {
                        name: lock_name.clone(),
                        depth,
                        binding: statement_binding(tokens, open, k),
                    });
                }
            }
            _ => {}
        }
        k += 1;
    }
}

/// If the statement containing token `k` starts with `let [mut] var`,
/// return `var` — the guard's binding. Looks back to the statement
/// opener (`;`, `{`, `}`), then reads forward past `let`/`mut`/`ref` and
/// destructuring heads (`Ok(`, `Some(`).
fn statement_binding(tokens: &[Token], body_open: usize, k: usize) -> Option<String> {
    let mut s = k;
    while s > body_open {
        if matches!(
            tokens[s].tok,
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}')
        ) {
            break;
        }
        s -= 1;
    }
    let mut j = s + 1;
    // `if let` / `while let` / plain `let`
    while j < k && !is_ident(tokens, j, "let") {
        if !matches!(tokens[j].tok, Tok::Ident(_)) {
            return None; // statement doesn't start with a let-ish prefix
        }
        j += 1;
    }
    if !is_ident(tokens, j, "let") {
        return None;
    }
    j += 1;
    loop {
        match tokens.get(j).map(|t| &t.tok) {
            Some(Tok::Ident(id)) if id == "mut" || id == "ref" => j += 1,
            Some(Tok::Ident(id)) if id == "Ok" || id == "Some" || id == "Err" => j += 1,
            Some(Tok::Punct('(')) => j += 1,
            Some(Tok::Ident(var)) => return Some(var.clone()),
            _ => return None,
        }
    }
}

/// Every elementary cycle is overkill; one witness per strongly-connected
/// knot is enough to fail the build. DFS with a path stack: report each
/// back-edge's loop once.
fn find_cycles(graph: &BTreeMap<(String, String), Edge>) -> Vec<Vec<(String, String)>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in graph.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut cycles = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        if done.contains(start) {
            continue;
        }
        let mut path: Vec<&str> = vec![start];
        let mut stack: Vec<std::vec::IntoIter<&str>> =
            vec![adj.get(start).cloned().unwrap_or_default().into_iter()];
        while let Some(iter) = stack.last_mut() {
            match iter.next() {
                Some(next) => {
                    if let Some(pos) = path.iter().position(|&n| n == next) {
                        // Cycle: path[pos..] + back to next.
                        let mut cycle = Vec::new();
                        for w in path[pos..].windows(2) {
                            cycle.push((w[0].to_string(), w[1].to_string()));
                        }
                        cycle.push((path[path.len() - 1].to_string(), next.to_string()));
                        cycles.push(cycle);
                    } else if !done.contains(next) {
                        path.push(next);
                        stack.push(adj.get(next).cloned().unwrap_or_default().into_iter());
                    }
                }
                None => {
                    done.insert(path.pop().expect("stack and path in step"));
                    stack.pop();
                }
            }
        }
    }
    cycles
}
