//! `panic-free-decode` — the decode paths must refuse, never panic.
//!
//! PR 4 established (and a proptest corruption harness verifies) that
//! `wire.rs` decoding turns arbitrary bytes into typed `WireError`s, not
//! panics. Proptests sample; this lint proves the *shape* on every
//! build: inside `read_frame` and every `decode_*` function in
//! `crates/net/src/wire.rs` there must be no `unwrap`/`expect`,
//! no `panic!`/`unreachable!`/`todo!`/`unimplemented!`, and no direct
//! slice indexing (`payload[4]`, `&buf[..n]` — both can panic; use
//! `get(..)` and typed errors).

use crate::diag::Diagnostics;
use crate::lexer::Tok;
use crate::lints::is_ident;
use crate::source::{match_brace, Workspace};

pub const NAME: &str = "panic-free-decode";

const BANNED_CALLS: &[&str] = &[
    "unwrap",
    "expect",
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
];

pub fn check(ws: &Workspace, diag: &mut Diagnostics) {
    let Some(wire) = ws.file_ending("net/src/wire.rs") else {
        return;
    };
    let tokens = &wire.tokens;
    let mut i = 0;
    while i < tokens.len() {
        if !is_ident(tokens, i, "fn") {
            i += 1;
            continue;
        }
        let Some(Tok::Ident(fn_name)) = tokens.get(i + 1).map(|t| &t.tok) else {
            i += 1;
            continue;
        };
        let in_scope = fn_name.starts_with("decode_") || fn_name == "read_frame";
        let Some(open) = (i..tokens.len()).find(|&k| matches!(tokens[k].tok, Tok::Punct('{')))
        else {
            break;
        };
        let close = match_brace(tokens, open);
        if !in_scope {
            i = close + 1;
            continue;
        }
        for k in open..close {
            match &tokens[k].tok {
                Tok::Ident(id) if BANNED_CALLS.contains(&id.as_str()) => {
                    diag.report(
                        wire,
                        tokens[k].line,
                        NAME,
                        format!(
                            "`{id}` in decode path `{fn_name}` — decoding must return a \
                             typed WireError, never panic"
                        ),
                    );
                }
                Tok::Punct('[') if is_index_bracket(tokens, k) => {
                    diag.report(
                        wire,
                        tokens[k].line,
                        NAME,
                        format!(
                            "direct slice indexing in decode path `{fn_name}` — out-of-range \
                             input would panic; use `get(..)` with a typed error"
                        ),
                    );
                }
                _ => {}
            }
        }
        i = close + 1;
    }
}

/// A `[` is an *index* when it follows a value expression: an identifier,
/// a closing bracket/paren, or a literal. `#[attr]`, `[u8; 4]` types and
/// array literals follow punctuation and stay legal.
fn is_index_bracket(tokens: &[crate::lexer::Token], k: usize) -> bool {
    if k == 0 {
        return false;
    }
    matches!(
        tokens[k - 1].tok,
        Tok::Ident(_) | Tok::Punct(']') | Tok::Punct(')') | Tok::Num(_)
    )
}
