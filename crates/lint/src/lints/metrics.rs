//! `metric-registry` — the metric namespace.
//!
//! Every instrument the stack registers (`counter(..)`, `gauge(..)`,
//! `histogram(..)`) shares one flat name space that the `obs_top`
//! dashboard, STATS v2 consumers and the bench JSON all read by string.
//! This lint keeps that namespace honest:
//!
//! 1. names follow the `crate.` prefix + lowercase-dot convention
//!    (`serve.frames_rendered`, `pool.rebalance.ticks`);
//! 2. one name, one instrument type — `counter("x")` in one file and
//!    `histogram("x")` in another is a data bug, not a style issue;
//! 3. every metric-shaped name the `mgpu-bench` crate (the dashboard
//!    side) reads exists at a registration site in the serving crates;
//! 4. the full registered set matches the blessed `ci/metrics.txt`
//!    snapshot — additions and removals land only together with a
//!    deliberate `mgpu-lint --update`.
//!
//! Name arguments resolve through the shared `mgpu_obs::names` consts as
//! well as string literals, so centralized registration sites stay
//! visible to the lint.

use std::collections::BTreeMap;

use crate::diag::Diagnostics;
use crate::lexer::Tok;
use crate::lints::is_ident;
use crate::source::{SourceFile, Workspace};

pub const NAME: &str = "metric-registry";

/// First path segment a metric name may use. `pool.*` lives in
/// `mgpu-net` but names the NodePool subsystem; the rest map to crates.
pub const NAMESPACES: &[&str] = &["serve", "net", "volren", "pool", "gpu", "obs"];

const INSTRUMENTS: &[&str] = &["counter", "gauge", "histogram"];

/// One `counter("…")`-style site with its resolved name.
#[derive(Debug, Clone)]
struct Site {
    instrument: &'static str,
    name: String,
    line: u32,
}

pub fn check(ws: &Workspace, diag: &mut Diagnostics) {
    let consts = named_consts(ws);

    // Convention check on the names module itself, so a bad const value
    // is flagged where it is written, not where it is used.
    if let Some(names_file) = ws.file_ending("obs/src/names.rs") {
        for (value, line) in consts.values() {
            if let Some(why) = convention_violation(value) {
                diag.report(
                    names_file,
                    *line,
                    NAME,
                    format!("metric name {value:?} {why}"),
                );
            }
        }
    }

    let mut registered: BTreeMap<String, (&'static str, String, u32)> = BTreeMap::new();
    let mut reads: Vec<(usize, Site)> = Vec::new();

    for (idx, file) in ws.files.iter().enumerate() {
        let dashboard_side = file.krate == "bench";
        for site in call_sites(file, &consts) {
            if let Some(why) = convention_violation(&site.name) {
                diag.report(
                    file,
                    site.line,
                    NAME,
                    format!("metric name {:?} {why}", site.name),
                );
            }
            if dashboard_side {
                reads.push((idx, site));
                continue;
            }
            match registered.get(&site.name) {
                Some((instrument, first_file, first_line)) if *instrument != site.instrument => {
                    diag.report(
                        file,
                        site.line,
                        NAME,
                        format!(
                            "{:?} registered as {} here but as {} at {}:{} — one name, \
                             one instrument type",
                            site.name, site.instrument, instrument, first_file, first_line
                        ),
                    );
                }
                Some(_) => {}
                None => {
                    registered.insert(
                        site.name.clone(),
                        (site.instrument, file.rel.display().to_string(), site.line),
                    );
                }
            }
        }
        // The dashboard also names metrics in plain string literals
        // (format strings aside, any dotted name in a known namespace).
        if dashboard_side {
            for t in &file.tokens {
                if let Tok::Str(s) = &t.tok {
                    if looks_like_metric(s) {
                        reads.push((
                            idx,
                            Site {
                                instrument: "counter", // irrelevant for reads
                                name: s.clone(),
                                line: t.line,
                            },
                        ));
                    }
                }
            }
        }
    }

    for (idx, read) in &reads {
        if !registered.contains_key(&read.name) {
            diag.report(
                &ws.files[*idx],
                read.line,
                NAME,
                format!(
                    "dashboard reads metric {:?} but nothing registers it",
                    read.name
                ),
            );
        }
    }

    // Blessed-set diff.
    let current = blessed_text(&registered);
    match &ws.blessed_metrics {
        None => {
            if !registered.is_empty() {
                diag.report_global(
                    "ci/metrics.txt".into(),
                    1,
                    NAME,
                    format!(
                        "ci/metrics.txt is missing; bless the {} registered metrics with \
                         `mgpu-lint --update`",
                        registered.len()
                    ),
                );
            }
        }
        Some(blessed) if blessed.trim() != current.trim() => {
            for line in diff_lines(blessed, &current) {
                diag.report_global("ci/metrics.txt".into(), 1, NAME, line);
            }
        }
        Some(_) => {}
    }
}

/// The canonical `ci/metrics.txt` body for the current tree: one
/// `instrument name` pair per line, sorted by name.
pub fn current_blessed(ws: &Workspace) -> String {
    let consts = named_consts(ws);
    let mut registered: BTreeMap<String, (&'static str, String, u32)> = BTreeMap::new();
    for file in &ws.files {
        if file.krate == "bench" {
            continue;
        }
        for site in call_sites(file, &consts) {
            registered
                .entry(site.name.clone())
                .or_insert((site.instrument, String::new(), 0));
        }
    }
    blessed_text(&registered)
}

fn blessed_text(registered: &BTreeMap<String, (&'static str, String, u32)>) -> String {
    let mut out = String::from(
        "# Blessed metric namespace: `instrument name`, sorted. Regenerate with\n\
         # `cargo run -p mgpu-lint -- --update` when metrics are added or removed.\n",
    );
    for (name, (instrument, _, _)) in registered {
        out.push_str(&format!("{instrument} {name}\n"));
    }
    out
}

fn diff_lines(blessed: &str, current: &str) -> Vec<String> {
    let b: Vec<&str> = blessed.lines().filter(|l| !l.starts_with('#')).collect();
    let c: Vec<&str> = current.lines().filter(|l| !l.starts_with('#')).collect();
    let mut out = Vec::new();
    for line in &c {
        if !b.contains(line) && !line.trim().is_empty() {
            out.push(format!(
                "metric `{line}` is registered but not blessed in ci/metrics.txt — \
                 run `mgpu-lint --update`"
            ));
        }
    }
    for line in &b {
        if !c.contains(line) && !line.trim().is_empty() {
            out.push(format!(
                "blessed metric `{line}` is no longer registered anywhere — \
                 run `mgpu-lint --update`"
            ));
        }
    }
    if out.is_empty() {
        out.push("ci/metrics.txt is stale (ordering/formatting) — run `mgpu-lint --update`".into());
    }
    out
}

/// `pub const IDENT: &str = "value";` declarations in `obs/src/names.rs`.
fn named_consts(ws: &Workspace) -> BTreeMap<String, (String, u32)> {
    let mut map = BTreeMap::new();
    let Some(file) = ws.file_ending("obs/src/names.rs") else {
        return map;
    };
    let tokens = &file.tokens;
    let mut i = 0;
    while i + 2 < tokens.len() {
        if is_ident(tokens, i, "const") {
            if let Some(Tok::Ident(ident)) = tokens.get(i + 1).map(|t| &t.tok) {
                // Find the string value before the `;`.
                let mut j = i + 2;
                while j < tokens.len() && !matches!(tokens[j].tok, Tok::Punct(';')) {
                    if let Tok::Str(value) = &tokens[j].tok {
                        map.insert(ident.clone(), (value.clone(), tokens[j].line));
                        break;
                    }
                    j += 1;
                }
                i = j;
            }
        }
        i += 1;
    }
    map
}

/// All `counter(..)`/`gauge(..)`/`histogram(..)` calls in non-test code
/// whose name argument is a string literal or a resolvable
/// `names::CONST` path. Declarations (`fn counter(...)`) are skipped.
fn call_sites(file: &SourceFile, consts: &BTreeMap<String, (String, u32)>) -> Vec<Site> {
    let tokens = &file.tokens;
    let mut sites = Vec::new();
    for i in 0..tokens.len() {
        let Some(instrument) = INSTRUMENTS.iter().find(|m| is_ident(tokens, i, m)).copied() else {
            continue;
        };
        if !matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
            continue;
        }
        if i > 0 && is_ident(tokens, i - 1, "fn") {
            continue; // a declaration, not a call
        }
        if file.in_test_region(tokens[i].line) {
            continue; // unit tests register throwaway names freely
        }
        // Resolve the first argument: a literal, or a path ending in a
        // known const ident.
        let mut j = i + 2;
        let mut last_ident: Option<&str> = None;
        let name = loop {
            match tokens.get(j).map(|t| &t.tok) {
                Some(Tok::Str(s)) => break Some(s.clone()),
                Some(Tok::Ident(s)) => {
                    last_ident = Some(s);
                    j += 1;
                }
                Some(Tok::Punct(':')) => j += 1,
                _ => {
                    break last_ident
                        .and_then(|ident| consts.get(ident))
                        .map(|(value, _)| value.clone())
                }
            }
        };
        if let Some(name) = name {
            sites.push(Site {
                instrument: match instrument {
                    "counter" => "counter",
                    "gauge" => "gauge",
                    _ => "histogram",
                },
                name,
                line: tokens[i].line,
            });
        }
    }
    sites
}

/// `None` if `name` conforms; otherwise why it does not.
fn convention_violation(name: &str) -> Option<&'static str> {
    let mut segments = name.split('.');
    let first = segments.next().unwrap_or("");
    if !NAMESPACES.contains(&first) {
        return Some(
            "must start with a known namespace segment \
             (serve/net/volren/pool/gpu/obs) followed by a dot",
        );
    }
    let rest: Vec<&str> = segments.collect();
    if rest.is_empty() {
        return Some("needs at least one dot-separated segment after the namespace");
    }
    for seg in rest {
        let mut chars = seg.chars();
        let head_ok = chars.next().is_some_and(|c| c.is_ascii_lowercase());
        if !head_ok
            || !seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return Some("segments must be lowercase snake_case (`[a-z][a-z0-9_]*`)");
        }
    }
    None
}

/// Is this string literal shaped like a metric name in a known
/// namespace? (`serve.frames_rendered` yes, `BENCH_obs.json` no.)
fn looks_like_metric(s: &str) -> bool {
    let Some((first, rest)) = s.split_once('.') else {
        return false;
    };
    NAMESPACES.contains(&first)
        && !rest.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
}
