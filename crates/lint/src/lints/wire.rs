//! `wire-conformance` — the opcode discipline.
//!
//! The protocol's correctness spans four files that nothing but
//! convention keeps in sync: the `opcode` module in
//! `crates/net/src/wire.rs` declares the numbers, the server dispatch
//! loop must answer every request, the client must understand every
//! reply, and the README wire table documents the lot. This lint parses
//! the opcode module and checks:
//!
//! 1. every opcode value is unique;
//! 2. every opcode the server *dispatches on* (match arm or `op ==`
//!    comparison) is a request (`< 0x80`) and every opcode it *sends*
//!    (first argument of `frame_bytes(..)` / `write_frame(..)`) is a
//!    reply (`>= 0x80`) — and every opcode does exactly one of the two;
//! 3. every opcode appears in the client (handled) or is knowingly
//!    ignored via a `// lint: wire-ignore(NAME)` comment there;
//! 4. every opcode name appears in `README.md`.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostics;
use crate::lexer::{parse_u64, Tok};
use crate::lints::{contains_word, is_ident, is_punct, path2};
use crate::source::{match_brace, SourceFile, Workspace};

pub const NAME: &str = "wire-conformance";

/// An opcode constant parsed out of `mod opcode`.
#[derive(Debug, Clone)]
pub struct Opcode {
    pub name: String,
    pub value: u64,
    pub line: u32,
}

pub fn check(ws: &Workspace, diag: &mut Diagnostics) {
    let Some(wire) = ws.file_ending("net/src/wire.rs") else {
        return; // no wire layer in this tree — nothing to conform to
    };
    let opcodes = parse_opcode_module(wire);
    if opcodes.is_empty() {
        return;
    }

    // (1) unique values.
    let mut by_value: BTreeMap<u64, &Opcode> = BTreeMap::new();
    for opcode in &opcodes {
        if let Some(first) = by_value.get(&opcode.value) {
            diag.report(
                wire,
                opcode.line,
                NAME,
                format!(
                    "opcode {} reuses value {:#04X} already taken by {}",
                    opcode.name, opcode.value, first.name
                ),
            );
        } else {
            by_value.insert(opcode.value, opcode);
        }
    }

    // (2) server roles.
    let server = ws.file_ending("net/src/server.rs");
    if let Some(server) = server {
        let (dispatched, sent) = server_roles(server);
        for opcode in &opcodes {
            let d = dispatched.contains(&opcode.name);
            let s = sent.contains(&opcode.name);
            if d && opcode.value >= 0x80 {
                diag.report(
                    wire,
                    opcode.line,
                    NAME,
                    format!(
                        "{} ({:#04X}) is dispatched as a request in server.rs but has a \
                         reply value (>= 0x80)",
                        opcode.name, opcode.value
                    ),
                );
            }
            if s && opcode.value < 0x80 {
                diag.report(
                    wire,
                    opcode.line,
                    NAME,
                    format!(
                        "{} ({:#04X}) is sent as a reply in server.rs but has a \
                         request value (< 0x80)",
                        opcode.name, opcode.value
                    ),
                );
            }
            if !d && !s {
                diag.report(
                    wire,
                    opcode.line,
                    NAME,
                    format!(
                        "{} ({:#04X}) is neither matched in the server dispatch nor \
                         sent as a reply — dead opcode or missing handler",
                        opcode.name, opcode.value
                    ),
                );
            }
        }
    }

    // (3) client coverage.
    if let Some(client) = ws.file_ending("net/src/client.rs") {
        let mut mentioned: BTreeSet<String> = BTreeSet::new();
        for i in 0..client.tokens.len() {
            if let Some((name, _)) = path2(&client.tokens, i, "opcode") {
                mentioned.insert(name.to_string());
            }
        }
        for opcode in &opcodes {
            let ignored = client.comments.iter().any(|c| {
                c.text
                    .contains(&format!("lint: wire-ignore({})", opcode.name))
            });
            if !mentioned.contains(&opcode.name) && !ignored {
                diag.report(
                    wire,
                    opcode.line,
                    NAME,
                    format!(
                        "{} ({:#04X}) is never handled in client.rs — handle it or mark \
                         it `// lint: wire-ignore({})` there",
                        opcode.name, opcode.value, opcode.name
                    ),
                );
            }
        }
    }

    // (4) README documentation.
    if let Some(readme) = &ws.readme {
        for opcode in &opcodes {
            if !contains_word(readme, &opcode.name) {
                diag.report(
                    wire,
                    opcode.line,
                    NAME,
                    format!(
                        "{} ({:#04X}) is not documented in the README wire table",
                        opcode.name, opcode.value
                    ),
                );
            }
        }
    }
}

/// Pull `pub const NAME: u8 = VALUE;` declarations out of `mod opcode`.
pub fn parse_opcode_module(wire: &SourceFile) -> Vec<Opcode> {
    let tokens = &wire.tokens;
    let Some(mod_at) = (0..tokens.len()).find(|&i| {
        is_ident(tokens, i, "mod")
            && is_ident(tokens, i + 1, "opcode")
            && is_punct(tokens, i + 2, '{')
    }) else {
        return Vec::new();
    };
    let open = mod_at + 2;
    let close = match_brace(tokens, open);
    let mut opcodes = Vec::new();
    let mut i = open;
    while i < close {
        // `pub const NAME : u8 = VALUE ;`
        if is_ident(tokens, i, "const") {
            let name = match tokens.get(i + 1).map(|t| &t.tok) {
                Some(Tok::Ident(s)) => s.clone(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            // Find the `=` then the value literal before the `;`.
            let mut j = i + 2;
            while j < close && !is_punct(tokens, j, '=') && !is_punct(tokens, j, ';') {
                j += 1;
            }
            if is_punct(tokens, j, '=') {
                if let Some(Tok::Num(lit)) = tokens.get(j + 1).map(|t| &t.tok) {
                    if let Some(value) = parse_u64(lit) {
                        opcodes.push(Opcode {
                            name,
                            value,
                            line: tokens[i + 1].line,
                        });
                    }
                }
            }
            i = j;
        }
        i += 1;
    }
    opcodes
}

/// Classify opcode uses in server.rs: `dispatched` names appear in match
/// arms (`opcode::X =>`, `opcode::X |`) or comparisons (`== opcode::X`);
/// `sent` names are the first argument of `frame_bytes(` /
/// `write_frame(`.
fn server_roles(server: &SourceFile) -> (BTreeSet<String>, BTreeSet<String>) {
    let tokens = &server.tokens;
    let mut dispatched = BTreeSet::new();
    let mut sent = BTreeSet::new();
    for i in 0..tokens.len() {
        let Some((name, _)) = path2(tokens, i, "opcode") else {
            continue;
        };
        let after = i + 4; // past `opcode :: NAME`
        let arm = (is_punct(tokens, after, '=') && is_punct(tokens, after + 1, '>'))
            || is_punct(tokens, after, '|');
        let cmp = i >= 2 && is_punct(tokens, i - 1, '=') && is_punct(tokens, i - 2, '=');
        let call = i >= 2
            && is_punct(tokens, i - 1, '(')
            && (is_ident(tokens, i - 2, "frame_bytes") || is_ident(tokens, i - 2, "write_frame"));
        if call {
            sent.insert(name.to_string());
        } else if arm || cmp {
            dispatched.insert(name.to_string());
        }
    }
    (dispatched, sent)
}
