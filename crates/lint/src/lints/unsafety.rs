//! `unsafe-hygiene` — unsafe is rare, annotated, and fenced.
//!
//! Two rules:
//!
//! 1. every `unsafe` keyword (block, fn, impl) carries a `// SAFETY:`
//!    comment on the same or the directly preceding line stating the
//!    invariant that makes it sound;
//! 2. a crate whose sources contain *no* `unsafe` at all must say so
//!    with `#![forbid(unsafe_code)]` in its `src/lib.rs`, so unsafe
//!    cannot creep in without tripping the compiler and this lint.

use std::collections::BTreeMap;

use crate::diag::Diagnostics;
use crate::lexer::Tok;
use crate::lints::{is_ident, is_punct};
use crate::source::Workspace;

pub const NAME: &str = "unsafe-hygiene";

pub fn check(ws: &Workspace, diag: &mut Diagnostics) {
    // crate → has any unsafe token
    let mut crate_unsafe: BTreeMap<&str, bool> = BTreeMap::new();

    for file in &ws.files {
        let mut any = false;
        for t in &file.tokens {
            if !matches!(&t.tok, Tok::Ident(s) if s == "unsafe") {
                continue;
            }
            any = true;
            let documented = file.comment_near(t.line, |text| text.contains("SAFETY:"));
            if !documented {
                diag.report(
                    file,
                    t.line,
                    NAME,
                    "`unsafe` without a `// SAFETY:` comment on the same or preceding \
                     line stating the soundness invariant"
                        .to_string(),
                );
            }
        }
        let entry = crate_unsafe.entry(file.krate.as_str()).or_insert(false);
        *entry |= any;
    }

    for (krate, has_unsafe) in crate_unsafe {
        if has_unsafe {
            continue;
        }
        let lib_suffix = if krate == "gpumr" {
            "src/lib.rs".to_string()
        } else {
            format!("crates/{krate}/src/lib.rs")
        };
        let Some(lib) = ws
            .files
            .iter()
            .find(|f| f.rel.to_string_lossy() == lib_suffix)
        else {
            continue; // bin-only crate: nothing to anchor the attribute to
        };
        if !has_forbid_unsafe(lib) {
            diag.report(
                lib,
                1,
                NAME,
                format!(
                    "crate `{krate}` contains no unsafe code but {lib_suffix} does not \
                     declare `#![forbid(unsafe_code)]`"
                ),
            );
        }
    }
}

/// Token pattern `# ! [ forbid ( unsafe_code ) ]` (also accepts `deny`).
fn has_forbid_unsafe(lib: &crate::source::SourceFile) -> bool {
    let tokens = &lib.tokens;
    (0..tokens.len()).any(|i| {
        is_punct(tokens, i, '#')
            && is_punct(tokens, i + 1, '!')
            && is_punct(tokens, i + 2, '[')
            && (is_ident(tokens, i + 3, "forbid") || is_ident(tokens, i + 3, "deny"))
            && is_punct(tokens, i + 4, '(')
            && is_ident(tokens, i + 5, "unsafe_code")
    })
}
