//! `atomic-ordering` — non-`Relaxed` orderings must say why.
//!
//! `Relaxed` is the workspace default (metrics counters, monotonic
//! epochs); anything stronger is a synchronization decision that the
//! next reader needs to be able to audit. Every `Ordering::SeqCst` /
//! `Acquire` / `Release` / `AcqRel` use must carry a comment on the same
//! or the directly preceding line that names the ordering (or the word
//! "ordering") and justifies it — e.g.
//! `// SeqCst: the drain flag must be visible before the epoch echo`.
//!
//! `std::cmp::Ordering` is unaffected (its variants are `Less` /
//! `Equal` / `Greater`).

use crate::diag::Diagnostics;
use crate::lints::path2;
use crate::source::Workspace;

pub const NAME: &str = "atomic-ordering";

const STRONG: &[&str] = &["SeqCst", "Acquire", "Release", "AcqRel"];

pub fn check(ws: &Workspace, diag: &mut Diagnostics) {
    for file in &ws.files {
        for i in 0..file.tokens.len() {
            let Some((variant, line)) = path2(&file.tokens, i, "Ordering") else {
                continue;
            };
            if !STRONG.contains(&variant) {
                continue;
            }
            if file.in_test_region(line) {
                continue;
            }
            let justified = file.comment_near(line, |text| {
                // A `lint: allow(...)` control comment is not a
                // justification — it routes through suppression instead.
                if text.trim_start().starts_with("lint:") {
                    return false;
                }
                let lower = text.to_ascii_lowercase();
                ["seqcst", "acquire", "release", "acqrel", "ordering"]
                    .iter()
                    .any(|k| lower.contains(k))
            });
            if !justified {
                diag.report(
                    file,
                    line,
                    NAME,
                    format!(
                        "Ordering::{variant} without a justification comment — say why \
                         Relaxed is not enough on this or the preceding line \
                         (e.g. `// {variant}: …`)"
                    ),
                );
            }
        }
    }
}
