//! The six project-invariant lints. Each is a function over the
//! [`Workspace`] that reports into a
//! [`Diagnostics`] sink; `run_all` is the CLI
//! entry point's one-stop call.
//!
//! | lint name | invariant |
//! |---|---|
//! | `wire-conformance` | opcode discipline across wire.rs / server / client / README |
//! | `metric-registry` | metric-name convention, type consistency, dashboard reads, blessed set |
//! | `panic-free-decode` | no panics or direct indexing in wire decode paths |
//! | `lock-order` | no cyclic held-while-acquiring lock order |
//! | `atomic-ordering` | every non-`Relaxed` ordering carries a justification comment |
//! | `unsafe-hygiene` | `// SAFETY:` on unsafe blocks; `#![forbid(unsafe_code)]` elsewhere |

pub mod atomics;
pub mod decode;
pub mod locks;
pub mod metrics;
pub mod unsafety;
pub mod wire;

use crate::diag::Diagnostics;
use crate::lexer::{Tok, Token};
use crate::source::Workspace;

/// Run every lint over the workspace.
pub fn run_all(ws: &Workspace) -> Diagnostics {
    let mut diag = Diagnostics::new();
    wire::check(ws, &mut diag);
    metrics::check(ws, &mut diag);
    decode::check(ws, &mut diag);
    locks::check(ws, &mut diag);
    atomics::check(ws, &mut diag);
    unsafety::check(ws, &mut diag);
    diag.findings.sort();
    diag
}

/// Does token `i` start the path `a::b`? (Pattern `Ident(a) :: Ident(b)`.)
pub(crate) fn path2<'t>(tokens: &'t [Token], i: usize, head: &str) -> Option<(&'t str, u32)> {
    if !matches!(&tokens[i].tok, Tok::Ident(s) if s == head) {
        return None;
    }
    if !(is_punct(tokens, i + 1, ':') && is_punct(tokens, i + 2, ':')) {
        return None;
    }
    match tokens.get(i + 3).map(|t| &t.tok) {
        Some(Tok::Ident(name)) => Some((name.as_str(), tokens[i + 3].line)),
        _ => None,
    }
}

pub(crate) fn is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

pub(crate) fn is_ident(tokens: &[Token], i: usize, name: &str) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Ident(s)) if s == name)
}

/// Does `word` appear in `text` as a standalone word (neighbors are not
/// `[A-Za-z0-9_]`)? Used for README documentation checks.
pub(crate) fn contains_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(at) = text[from..].find(word) {
        let start = from + at;
        let end = start + word.len();
        let left_ok = start == 0 || !is_word_byte(bytes[start - 1]);
        let right_ok = end == bytes.len() || !is_word_byte(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}
