//! Workspace file model: which files the analyzer sees and what each file
//! pre-computes (tokens, comments, `lint: allow(...)` suppressions,
//! `#[cfg(test)] mod` line ranges).
//!
//! Scope is deliberate: the lints read **non-test source** — every `.rs`
//! under `crates/*/src/` plus the facade's `src/` — and two side files the
//! wire lint needs, `README.md` and `ci/metrics.txt`. Test trees, the
//! `shims/` stand-ins for registry crates, and anything under a
//! `fixtures/` directory (the analyzer's own red/green test inputs) are
//! out of scope; invariants there are enforced by the tests themselves.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Comment, Lexed, Tok, Token};

/// One source file, lexed and indexed.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root (display + suffix matching).
    pub rel: PathBuf,
    /// Which crate the file belongs to (`mgpu-net` → `net`; the facade's
    /// `src/` is `gpumr`).
    pub krate: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// `comments` with runs of consecutive line comments merged into one
    /// block, so a `// SAFETY: …` note that wraps onto a second line
    /// still counts as one comment adjacent to the line below it.
    blocks: Vec<Comment>,
    /// `lint-name → lines` where a `// lint: allow(name)` comment
    /// suppresses findings (the comment's own line and the next line).
    allows: BTreeMap<String, BTreeSet<u32>>,
    /// Line ranges (inclusive) covered by `#[cfg(test)] mod … { … }`.
    test_regions: Vec<(u32, u32)>,
}

impl SourceFile {
    pub fn parse(rel: PathBuf, krate: String, text: &str) -> SourceFile {
        let Lexed { tokens, comments } = lex(text);
        let allows = collect_allows(&comments);
        let test_regions = collect_test_regions(&tokens);
        let blocks = merge_blocks(&comments);
        SourceFile {
            rel,
            krate,
            tokens,
            comments,
            blocks,
            allows,
            test_regions,
        }
    }

    /// Is a finding of `lint` at `line` suppressed by an allow comment?
    pub fn allowed(&self, lint: &str, line: u32) -> bool {
        self.allows.get(lint).is_some_and(|l| l.contains(&line))
    }

    /// Is this line inside a `#[cfg(test)] mod`? Unit-test modules get to
    /// register throwaway metric names and take locks in funny orders.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }

    /// Is there a comment block whose text satisfies `pred` ending on
    /// `line` or the line directly above? (The "same or preceding line"
    /// contract used by the SAFETY and atomic-ordering checks.)
    /// Consecutive line comments count as one block, so wrapped comments
    /// stay adjacent.
    pub fn comment_near(&self, line: u32, pred: impl Fn(&str) -> bool) -> bool {
        self.blocks
            .iter()
            .any(|c| (c.end_line == line || c.end_line + 1 == line) && pred(&c.text))
    }
}

/// `// lint: allow(name)` — also accepted with extra prose after the
/// closing paren, so a suppression can say *why* on the same line.
fn collect_allows(comments: &[Comment]) -> BTreeMap<String, BTreeSet<u32>> {
    let mut map: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("lint: allow(") else {
            continue;
        };
        let Some(name) = rest.split(')').next() else {
            continue;
        };
        let entry = map.entry(name.trim().to_string()).or_default();
        entry.insert(c.end_line);
        entry.insert(c.end_line + 1);
    }
    map
}

/// Merge runs of line comments on consecutive lines into single blocks
/// (text joined with spaces). Block comments pass through unchanged.
fn merge_blocks(comments: &[Comment]) -> Vec<Comment> {
    let mut blocks: Vec<Comment> = Vec::new();
    for c in comments {
        match blocks.last_mut() {
            Some(prev) if prev.end_line + 1 == c.start_line => {
                prev.end_line = c.end_line;
                prev.text.push(' ');
                prev.text.push_str(&c.text);
            }
            _ => blocks.push(c.clone()),
        }
    }
    blocks
}

/// Line ranges of `#[cfg(test)] mod name { … }` blocks, found by token
/// pattern and brace matching. Attributes between the cfg and the `mod`
/// are tolerated.
fn collect_test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 5 < tokens.len() {
        let is_cfg_test = matches!(&tokens[i].tok, Tok::Punct('#'))
            && matches!(&tokens[i + 1].tok, Tok::Punct('['))
            && matches!(&tokens[i + 2].tok, Tok::Ident(s) if s == "cfg")
            && matches!(&tokens[i + 3].tok, Tok::Punct('('))
            && matches!(&tokens[i + 4].tok, Tok::Ident(s) if s == "test");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Scan forward (over possible further attributes) for `mod X {`.
        let mut j = i + 5;
        let mut found_mod = None;
        while j < tokens.len() && j < i + 64 {
            if matches!(&tokens[j].tok, Tok::Ident(s) if s == "mod") {
                found_mod = Some(j);
                break;
            }
            // A `fn`/`struct`/`use` before `mod` means this cfg(test)
            // guards a single item, not a module — still worth skipping
            // for registration scans, but item extent is the brace block
            // that follows either way.
            if matches!(&tokens[j].tok, Tok::Ident(s) if s == "fn" || s == "struct" || s == "impl")
            {
                found_mod = Some(j);
                break;
            }
            j += 1;
        }
        let Some(item) = found_mod else {
            i += 1;
            continue;
        };
        // Find the opening brace of the item, then its match.
        let Some(open) = (item..tokens.len()).find(|&k| matches!(tokens[k].tok, Tok::Punct('{')))
        else {
            i += 1;
            continue;
        };
        let close = match_brace(tokens, open);
        regions.push((tokens[i].line, tokens[close].line));
        i = close + 1;
    }
    regions
}

/// Index of the `}` matching the `{` at `open` (or the last token if the
/// file is truncated).
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// The analyzer's view of the workspace.
#[derive(Debug)]
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
    /// `README.md` text, if present (the wire lint's documentation check).
    pub readme: Option<String>,
    /// Blessed metric list (`ci/metrics.txt`), if present.
    pub blessed_metrics: Option<String>,
}

impl Workspace {
    /// Load the real tree rooted at `root` (the directory holding the
    /// workspace `Cargo.toml`).
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut rs_files = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            crate_dirs.sort();
            for dir in crate_dirs {
                let src = dir.join("src");
                if src.is_dir() {
                    walk_rs(&src, &mut rs_files)?;
                }
            }
        }
        let facade_src = root.join("src");
        if facade_src.is_dir() {
            walk_rs(&facade_src, &mut rs_files)?;
        }
        rs_files.sort();

        let mut files = Vec::new();
        for path in rs_files {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            let text = fs::read_to_string(&path)?;
            files.push(SourceFile::parse(rel.clone(), crate_of(&rel), &text));
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            readme: fs::read_to_string(root.join("README.md")).ok(),
            blessed_metrics: fs::read_to_string(root.join("ci").join("metrics.txt")).ok(),
        })
    }

    /// Build a workspace from in-memory files — the red/green fixture
    /// path. Paths are workspace-relative; `README.md` and
    /// `ci/metrics.txt` entries are routed to their side channels.
    pub fn from_files(files: Vec<(&str, &str)>) -> Workspace {
        let mut ws = Workspace {
            root: PathBuf::new(),
            files: Vec::new(),
            readme: None,
            blessed_metrics: None,
        };
        for (path, text) in files {
            if path == "README.md" {
                ws.readme = Some(text.to_string());
            } else if path == "ci/metrics.txt" {
                ws.blessed_metrics = Some(text.to_string());
            } else {
                let rel = PathBuf::from(path);
                ws.files
                    .push(SourceFile::parse(rel.clone(), crate_of(&rel), text));
            }
        }
        ws
    }

    /// The file whose relative path ends with `suffix` (e.g.
    /// `net/src/wire.rs`).
    pub fn file_ending(&self, suffix: &str) -> Option<&SourceFile> {
        self.files
            .iter()
            .find(|f| f.rel.to_string_lossy().ends_with(suffix))
    }
}

/// Crate name from a workspace-relative path: `crates/net/src/wire.rs` →
/// `net`; the facade's `src/lib.rs` → `gpumr`.
fn crate_of(rel: &Path) -> String {
    let mut parts = rel.components().map(|c| c.as_os_str().to_string_lossy());
    match parts.next().as_deref() {
        Some("crates") => parts
            .next()
            .map(|s| s.to_string())
            .unwrap_or_else(|| "unknown".to_string()),
        Some("src") => "gpumr".to_string(),
        _ => "unknown".to_string(),
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().to_string());
        if path.is_dir() {
            // Fixture trees are lint *inputs*, never lint *subjects*.
            if name.as_deref() == Some("fixtures") || name.as_deref() == Some("target") {
                continue;
            }
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_comment_covers_its_line_and_the_next() {
        let f = SourceFile::parse(
            PathBuf::from("crates/x/src/lib.rs"),
            "x".into(),
            "// lint: allow(lock-order) two-phase handoff, never inverted\nfn f() {}\n",
        );
        assert!(f.allowed("lock-order", 1));
        assert!(f.allowed("lock-order", 2));
        assert!(!f.allowed("lock-order", 3));
        assert!(!f.allowed("atomic-ordering", 2));
    }

    #[test]
    fn cfg_test_regions_are_found() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let f = SourceFile::parse(PathBuf::from("crates/x/src/lib.rs"), "x".into(), src);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(3));
        assert!(f.in_test_region(4));
    }
}
