//! CLI for the project-invariant analyzer.
//!
//! ```text
//! mgpu-lint [--check] [--update] [--root DIR] [--report FILE]
//! ```
//!
//! `--check` (the default) runs all six lints and exits non-zero on any
//! finding. `--update` re-blesses `ci/metrics.txt` from the current tree
//! first, then checks. `--report` additionally writes the findings to a
//! file (CI uploads it as an artifact). With no `--root`, the workspace
//! root is found by walking up from the current directory to the first
//! `Cargo.toml` that declares `[workspace]`.

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use mgpu_lint::lints::metrics;
use mgpu_lint::{run_all, Workspace};

fn main() -> ExitCode {
    let mut update = false;
    let mut root: Option<PathBuf> = None;
    let mut report: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--update" => update = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--report" => report = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                eprintln!("usage: mgpu-lint [--check] [--update] [--root DIR] [--report FILE]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mgpu-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(root) => root,
        None => {
            eprintln!("mgpu-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    let mut ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(err) => {
            eprintln!("mgpu-lint: failed to read {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if update {
        let blessed = metrics::current_blessed(&ws);
        let path = root.join("ci").join("metrics.txt");
        if let Err(err) = fs::write(&path, &blessed) {
            eprintln!("mgpu-lint: failed to write {}: {err}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "blessed {} metrics into {}",
            blessed.lines().filter(|l| !l.starts_with('#')).count(),
            path.display()
        );
        ws.blessed_metrics = Some(blessed);
    }

    let diag = run_all(&ws);
    let mut out = String::new();
    for finding in &diag.findings {
        out.push_str(&format!("{finding}\n"));
    }
    print!("{out}");
    let summary = format!(
        "mgpu-lint: {} finding(s), {} suppressed by allow comments, {} files scanned",
        diag.findings.len(),
        diag.suppressed,
        ws.files.len()
    );
    println!("{summary}");
    if let Some(report_path) = report {
        let body = format!("{out}{summary}\n");
        if let Err(err) = fs::write(&report_path, body) {
            eprintln!(
                "mgpu-lint: failed to write {}: {err}",
                report_path.display()
            );
        }
    }
    if diag.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
