//! # mgpu-lint — the project-invariant static analyzer
//!
//! Clippy checks Rust; this crate checks **gpumr**. The workspace
//! encodes cross-file invariants no general-purpose linter can know:
//! the wire protocol's opcode discipline spans `wire.rs`, the server
//! dispatch loop, the client and the README table; the metric namespace
//! is shared between the serving crates and the `obs_top` dashboard;
//! the decode path carries a panic-free guarantee; 64 lock sites share
//! an acquisition order; atomics and `unsafe` carry justification
//! conventions. Those invariants rot silently as the system grows —
//! unless something fails the build when they do. This crate is that
//! something: a dependency-free analyzer over a hand-rolled,
//! comment/string/char/raw-string-aware Rust [`lexer`], with six lints
//! on top (see [`lints`]), run in CI as
//! `cargo run -p mgpu-lint --release -- --check`, regression-locked by
//! red/green fixture self-tests in `tests/`.
//!
//! A single finding can be waived at its site with a
//! `// lint: allow(<lint-name>) <reason>` comment on the same or the
//! preceding line; the metric namespace is blessed into
//! `ci/metrics.txt` and re-blessed with `mgpu-lint --update` — the same
//! deliberate-change contract as `ci/api_surface.sh`.

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod lints;
pub mod source;

pub use diag::{Diagnostics, Finding};
pub use lints::run_all;
pub use source::{SourceFile, Workspace};
