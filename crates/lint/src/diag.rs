//! Findings and the suppression-aware sink lints report through.

use std::fmt;
use std::path::PathBuf;

use crate::source::SourceFile;

/// One violation: a lint name, a site, and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: PathBuf,
    pub line: u32,
    pub lint: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}

/// Collector that applies `// lint: allow(name)` suppression at the site
/// before a finding lands.
#[derive(Debug, Default)]
pub struct Diagnostics {
    pub findings: Vec<Finding>,
    pub suppressed: usize,
}

impl Diagnostics {
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Report a violation found in `file` at `line`. Swallowed (and
    /// counted) if an allow comment covers the site.
    pub fn report(&mut self, file: &SourceFile, line: u32, lint: &'static str, message: String) {
        if file.allowed(lint, line) {
            self.suppressed += 1;
            return;
        }
        self.findings.push(Finding {
            file: file.rel.clone(),
            line,
            lint,
            message,
        });
    }

    /// Report a violation with no single source site (e.g. "opcode never
    /// documented in README"): attributed to `file` at `line` anyway so
    /// every finding is clickable, but never suppressible by a comment.
    pub fn report_global(&mut self, file: PathBuf, line: u32, lint: &'static str, message: String) {
        self.findings.push(Finding {
            file,
            line,
            lint,
            message,
        });
    }
}
